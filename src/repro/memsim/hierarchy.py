"""Whole-hierarchy simulation: trace + layout + machine -> miss counts.

The fixed pipeline lives in :mod:`repro.memsim.levels` now — the
standard stack is L1 (sees every access), L2 (sees exactly the L1
misses), TLB (every access at page granularity), and DRAM (the L2 fill
stream, with row-buffer and energy accounting).  Data transferred from
memory is L2 misses x L2 line size — the quantity the paper's §6 table
normalizes — and execution time is synthesized from the additive
:class:`TimingModel`.  This module keeps the stable entry points
(`simulate_hierarchy`, `simulate_addresses`) and folds a
:class:`HierarchyResult` down to the flat :class:`MemStats` record the
harness caches and compares bit-for-bit across engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import MutableMapping, Optional

import numpy as np

from ..core.regroup.layout import Layout
from ..interp.trace import AccessTrace
from ..obs import span
from .cache import simulate_cache
from .levels import HierarchyResult, MemoryHierarchy
from .machine import MachineConfig


@dataclass(frozen=True)
class MemStats:
    """Result of simulating one program variant on one machine."""

    machine: str
    accesses: int
    l1_misses: int
    l2_misses: int
    tlb_misses: int
    l1_line_bytes: int
    l2_line_bytes: int
    seconds: float
    #: dirty L2 lines written back to memory (outbound bandwidth)
    l2_writebacks: int = 0
    #: DRAM row-buffer outcome of the L2 fill stream (0 on entries
    #: cached before the DRAM level existed)
    dram_row_hits: int = 0
    dram_row_misses: int = 0
    dram_banks_touched: int = 0
    #: energy the memory device spent on this run (nanojoules)
    dram_energy_nj: float = 0.0

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.accesses if self.accesses else 0.0

    @property
    def tlb_miss_rate(self) -> float:
        return self.tlb_misses / self.accesses if self.accesses else 0.0

    @property
    def data_transferred_bytes(self) -> int:
        """Bytes moved between memory and cache in both directions (the
        bandwidth the program actually consumed): line fills plus dirty
        write-backs."""
        return (self.l2_misses + self.l2_writebacks) * self.l2_line_bytes

    @property
    def l1_fill_bytes(self) -> int:
        """Bytes moved across the L2 -> L1 boundary (L1 fills)."""
        return self.l1_misses * self.l1_line_bytes

    @property
    def effective_bandwidth_bytes_s(self) -> float:
        """Memory traffic over synthesized run time: §6's headline lens."""
        return self.data_transferred_bytes / self.seconds if self.seconds else 0.0

    @property
    def dram_row_hit_rate(self) -> float:
        fills = self.dram_row_hits + self.dram_row_misses
        return self.dram_row_hits / fills if fills else 0.0

    def normalized_to(self, base: "MemStats") -> dict[str, float]:
        def ratio(a: float, b: float) -> float:
            return a / b if b else (0.0 if a == 0 else float("inf"))

        return {
            "time": ratio(self.seconds, base.seconds),
            "l1": ratio(self.l1_misses, base.l1_misses),
            "l2": ratio(self.l2_misses, base.l2_misses),
            "tlb": ratio(self.tlb_misses, base.tlb_misses),
        }


def stats_from_hierarchy(
    outcome: HierarchyResult, machine: MachineConfig
) -> MemStats:
    """Fold per-level results down to the flat cached/compared record."""
    l1, l2, tlb = outcome["l1"], outcome["l2"], outcome["tlb"]
    n, n1, n2, nt = outcome.accesses, l1.misses, l2.misses, tlb.misses
    t = machine.timing
    cycles = (
        n * t.cycles_per_access
        + n1 * t.l1_miss_cycles
        + n2 * t.l2_miss_cycles
        + nt * t.tlb_miss_cycles
    )
    latency_seconds = cycles / (t.clock_mhz * 1e6)
    bandwidth_seconds = (
        (n2 + l2.writebacks) * machine.l2.line_bytes
    ) / (t.bandwidth_mb_s * 1e6)
    dram = outcome.dram
    return MemStats(
        machine=machine.name,
        accesses=n,
        l1_misses=n1,
        l2_misses=n2,
        tlb_misses=nt,
        l1_line_bytes=machine.l1.line_bytes,
        l2_line_bytes=machine.l2.line_bytes,
        seconds=max(latency_seconds, bandwidth_seconds),
        l2_writebacks=l2.writebacks,
        dram_row_hits=dram.row_hits if dram is not None else 0,
        dram_row_misses=dram.row_misses if dram is not None else 0,
        dram_banks_touched=dram.banks_touched if dram is not None else 0,
        dram_energy_nj=dram.energy_nj if dram is not None else 0.0,
    )


def simulate_hierarchy(
    trace: AccessTrace,
    layout: Layout,
    machine: MachineConfig,
    engine: Optional[str] = None,
    timings: Optional[MutableMapping[str, float]] = None,
) -> MemStats:
    """Simulate L1 -> L2 -> TLB -> DRAM for one (trace, layout) pair.

    ``engine`` selects the simulation implementation (see
    :data:`repro.memsim.cache.ENGINES`).  When ``timings`` is a mapping,
    per-stage wall-clock seconds are accumulated into it under the keys
    ``addresses``, ``l1``, ``l2``, ``tlb`` and ``dram``.  Each stage
    also emits an :mod:`repro.obs` span, so profiles see the same
    breakdown.
    """
    with span("addresses", accesses=len(trace)) as sp:
        addresses = layout.addresses(trace, in_bytes=True)
    if timings is not None:
        timings["addresses"] = timings.get("addresses", 0.0) + sp.duration_s
    return simulate_addresses(
        addresses, trace.writes, machine, engine=engine, timings=timings
    )


def simulate_addresses(
    addresses: np.ndarray,
    writes: np.ndarray,
    machine: MachineConfig,
    engine: Optional[str] = None,
    timings: Optional[MutableMapping[str, float]] = None,
) -> MemStats:
    """Simulate the hierarchy from a pre-computed byte-address stream.

    This is the entry point the trace cache uses: a cached (addresses,
    writes) pair replays without re-tracing or re-laying-out the
    program.  Each level runs under an :mod:`repro.obs` span named
    after it (``l1``/``l2``/``tlb``/``dram``); the legacy ``timings``
    mapping is filled from the same spans.
    """
    hierarchy = MemoryHierarchy.standard(machine)
    outcome = hierarchy.simulate(
        addresses, writes, engine=engine, timings=timings
    )
    return stats_from_hierarchy(outcome, machine)


def simulate_stream(
    stream,
    machine: MachineConfig,
    engine: Optional[str] = None,
    timings: Optional[MutableMapping[str, float]] = None,
) -> MemStats:
    """Simulate an :class:`~repro.stream.AddressStream` end to end.

    The stream front door: its write column rides along automatically,
    so imported traces and cached streams replay with one call.
    """
    return simulate_addresses(
        stream.addresses, stream.writes, machine, engine=engine, timings=timings
    )


def miss_mask_l1(
    trace: AccessTrace, layout: Layout, machine: MachineConfig
) -> np.ndarray:
    """Per-access L1 miss mask (analysis/visualization support)."""
    return simulate_cache(machine.l1, layout.addresses(trace, in_bytes=True))
