"""Vectorized cache-simulation engine (the ``fast`` engine).

The scalar loops in :mod:`repro.memsim.cache` are exact but spend
hundreds of nanoseconds per access in the interpreter.  This module
re-derives the same per-access miss masks and write-back counts with
numpy primitives, exploiting three structural facts about LRU caches:

1. **Run-length compression.**  Consecutive accesses to the same line
   are guaranteed hits that leave the LRU state unchanged apart from
   OR-ing the dirty bit, so the stream can be compressed to run heads
   before simulation and the miss mask scattered back afterwards.

2. **Set-partitioned shift comparison.**  Restricted to one set, an
   A-way LRU cache holds exactly the A most recently used distinct
   lines.  After a stable sort by set index, a direct-mapped miss is
   simply ``line[i] != line[i-1]`` within the set's subsequence, and —
   once consecutive in-set duplicates are removed — a 2-way miss is
   ``line[i] != line[i-2]``.  (The shift trick stops at 2 ways: the
   third most recent *distinct* line can sit arbitrarily far back.)

3. **Residency-segment write-backs.**  For any LRU geometry, a line is
   written back exactly once per *dirty residency*: the span from one of
   its misses up to (exclusive) its next miss, or the end of the trace
   (the final flush).  Given the miss mask, write-backs are therefore a
   segmented any-write reduction over per-line access sequences — no
   eviction ordering needed.

The fully-associative path determines each access's stack distance —
the number of distinct lines touched since the previous access to the
same line (paper §2.1); the access hits iff that distance is below the
capacity.  Distances are resolved hierarchically: a gap filter settles
short reuses, dyadic per-block occupancy bitmasks bound the rest, and
only the residual ambiguous accesses pay for an exact bit-level count.
``fa_miss_counts`` additionally derives the misses of *every* capacity
from one Olken profile (the reuse-distance methodology of Fig. 3).

Every path is bit-identical to the reference engine; the property tests
in ``tests/properties/test_engine_props.py`` pin that equivalence on
random streams.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..locality.reuse_distance import miss_count, reuse_distances
from ..obs import metrics
from .cache import CacheConfig, CacheResult, _fully_associative, _n_way

#: Upper bound on the sparse-table footprint of the fully-associative
#: fast path (bytes); streams that would exceed it use the scalar loop.
_FA_TABLE_BYTES = 96 * 1024 * 1024
#: Positions per occupancy-bitmask block (fully-associative path).
_FA_BLOCK = 32


def simulate_fast(config: CacheConfig, lines: np.ndarray, writes: np.ndarray) -> CacheResult:
    """Vectorized equivalent of the scalar dispatch in ``cache.py``."""
    metrics.inc("engine.fast.calls")
    n = len(lines)
    if n == 0:
        return CacheResult(np.zeros(0, dtype=bool), 0)

    # Run-length compression: only run heads can miss, dirty bits OR.
    head = np.empty(n, dtype=bool)
    head[0] = True
    np.not_equal(lines[1:], lines[:-1], out=head[1:])
    hpos = np.flatnonzero(head)
    clines = lines[hpos]
    track_wb = bool(writes.any())
    cwrites = (
        np.logical_or.reduceat(writes, hpos)
        if track_wb
        else np.zeros(len(hpos), dtype=bool)
    )

    if config.assoc == 0 or config.num_sets == 1:
        cmiss = _fa_miss_mask(clines, config.ways)
    elif config.assoc == 1:
        cmiss = _direct_mapped_miss_mask(clines, config.num_sets)
    elif config.assoc == 2:
        cmiss = _two_way_miss_mask(clines, config.num_sets)
    else:
        # Associativities 3+ (with several sets) do not occur on the
        # paper's machines; reuse the scalar reference loop wholesale.
        metrics.inc("engine.fast.scalar_fallback")
        res = _n_way(clines, cwrites, config.num_sets, config.assoc)
        return _expand(n, hpos, res.miss, res.writebacks)

    writebacks = residency_writebacks(clines, cmiss, cwrites) if track_wb else 0
    return _expand(n, hpos, cmiss, writebacks)


def _expand(
    n: int, hpos: np.ndarray, cmiss: np.ndarray, writebacks: int
) -> CacheResult:
    """Scatter a run-head miss mask back to per-access granularity."""
    miss = np.zeros(n, dtype=bool)
    miss[hpos] = cmiss
    return CacheResult(miss, writebacks)


def _sort_key(values: np.ndarray, max_value: int) -> np.ndarray:
    """Cast to the narrowest signed dtype (radix sort gets much faster)."""
    if max_value < 2**15:
        return values.astype(np.int16)
    if max_value < 2**31:
        return values.astype(np.int32)
    return values


def residency_writebacks(
    lines: np.ndarray, miss: np.ndarray, writes: np.ndarray
) -> int:
    """Write-backs from a miss mask via dirty-residency counting.

    Valid for every LRU geometry (see module docstring, fact 3): group
    accesses by line, split each line's sequence at its misses, and
    count the segments containing at least one write.
    """
    if not writes.any():
        return 0
    key = _sort_key(lines, int(lines.max()) if len(lines) else 0)
    order = np.argsort(key, kind="stable")
    miss_l = miss[order]
    # A line's first access is always a miss, so cumsum(miss) segments
    # never straddle two lines.
    seg = np.cumsum(miss_l)
    dirty = np.zeros(int(seg[-1]) + 1, dtype=bool)
    dirty[seg[writes[order]]] = True
    return int(dirty.sum())


def _direct_mapped_miss_mask(lines: np.ndarray, num_sets: int) -> np.ndarray:
    sets = _sort_key(lines % num_sets, num_sets - 1)
    order = np.argsort(sets, kind="stable")
    ls = lines[order]
    ss = sets[order]
    miss_sorted = np.empty(len(ls), dtype=bool)
    miss_sorted[0] = True
    np.not_equal(ss[1:], ss[:-1], out=miss_sorted[1:])
    miss_sorted[1:] |= ls[1:] != ls[:-1]
    miss = np.empty(len(ls), dtype=bool)
    miss[order] = miss_sorted
    return miss


def _two_way_miss_mask(lines: np.ndarray, num_sets: int) -> np.ndarray:
    sets = _sort_key(lines % num_sets, num_sets - 1)
    order = np.argsort(sets, kind="stable")
    ls = lines[order]
    ss = sets[order]
    n = len(ls)
    # In-set runs of the same line: only run heads can miss.  (Global
    # RLE leaves such runs when accesses from other sets interleave.)
    rhead = np.empty(n, dtype=bool)
    rhead[0] = True
    np.not_equal(ss[1:], ss[:-1], out=rhead[1:])
    rhead[1:] |= ls[1:] != ls[:-1]
    hpos = np.flatnonzero(rhead)
    hl = ls[hpos]
    hs = ss[hpos]
    # Deduplicated in-set sequence: the 2-way set holds exactly the last
    # two distinct lines, which are the two previous heads; hit iff the
    # line equals the head two back *within the same set*.
    miss_h = np.ones(len(hpos), dtype=bool)
    if len(hpos) > 2:
        np.not_equal(hs[2:], hs[:-2], out=miss_h[2:])
        miss_h[2:] |= hl[2:] != hl[:-2]
    miss_sorted = np.zeros(n, dtype=bool)
    miss_sorted[hpos] = miss_h
    miss = np.empty(n, dtype=bool)
    miss[order] = miss_sorted
    return miss


def _fa_miss_mask(lines: np.ndarray, capacity: int) -> np.ndarray:
    """Fully-associative LRU miss mask (stream already RLE-compressed)."""
    m = len(lines)
    lo = int(lines.min())
    hi = int(lines.max())
    if lo >= 0 and hi < max(4 * m, 1 << 16):
        ids = lines
        nids = hi + 1
    else:
        # Sparse/arbitrary line numbers: densify once.
        _, ids = np.unique(lines, return_inverse=True)
        nids = int(ids.max()) + 1

    # Previous occurrence of each line (grouped stable sort + shift).
    # Positions fit int32 (traces are < 2**31 accesses), halving traffic.
    key = _sort_key(ids, nids - 1)
    order = np.argsort(key, kind="stable")
    ids_s = key[order]
    same = ids_s[1:] == ids_s[:-1]
    prev = np.full(m, -1, dtype=np.int32)
    prev[order[1:][same]] = order[:-1][same]

    t = np.arange(m, dtype=np.int32)
    gap = t - prev - 1
    # Stack distance <= gap, so a short gap is a guaranteed hit.
    miss = (prev < 0) | (gap >= capacity)
    cand = np.flatnonzero((prev >= 0) & (gap >= capacity))
    if len(cand) == 0:
        return miss

    words = (nids + 1 + 63) >> 6  # +1 for the padding sentinel id
    nblocks = -(-m // _FA_BLOCK)
    levels = max(1, nblocks.bit_length())
    if words * nblocks * (levels + 1) * 8 > _FA_TABLE_BYTES or len(cand) > m:
        metrics.inc("engine.fast.fa_scalar_fallback")
        return _fa_scalar_miss_mask(lines, capacity)

    decided = _fa_resolve_candidates(
        ids, prev[cand], t[cand], capacity, nids, words, nblocks
    )
    miss[cand] = decided
    return miss


def _fa_scalar_miss_mask(lines: np.ndarray, capacity: int) -> np.ndarray:
    return _fully_associative(
        lines, np.zeros(len(lines), dtype=bool), capacity
    ).miss


def _fa_resolve_candidates(
    ids: np.ndarray,
    p: np.ndarray,
    t: np.ndarray,
    capacity: int,
    nids: int,
    words: int,
    nblocks: int,
) -> np.ndarray:
    """True where the stack distance over the window ``(p, t)`` >= capacity.

    Builds a dyadic sparse table of per-block line-occupancy bitmasks,
    bounds each window's distinct count from block-aligned inner/outer
    spans, and resolves the residual ambiguous windows exactly by OR-ing
    the partial edge blocks bit by bit.
    """
    B = _FA_BLOCK
    m = len(ids)
    pad = nblocks * B - m
    ids_p = np.concatenate([ids, np.full(pad, nids, dtype=ids.dtype)]) if pad else ids

    # Level-0 occupancy masks, then dyadic OR doubling (idempotent, so
    # two overlapping power-of-two spans cover any block range exactly).
    table = [np.zeros((nblocks, words), dtype=np.uint64)]
    widx = ids_p >> 6
    bit = np.uint64(1) << (ids_p & 63).astype(np.uint64)
    for w in range(words):
        vals = np.where(widx == w, bit, np.uint64(0))
        table[0][:, w] = np.bitwise_or.reduce(vals.reshape(nblocks, B), axis=1)
    k = 1
    while (1 << k) <= nblocks:
        half = 1 << (k - 1)
        prev_t = table[k - 1]
        table.append(prev_t[: nblocks - (1 << k) + 1] | prev_t[half:][: nblocks - (1 << k) + 1])
        k += 1

    def range_or(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """OR of blocks [a, b) per query; b > a required."""
        length = b - a
        out = np.zeros((len(a), words), dtype=np.uint64)
        lev = np.frexp(length.astype(np.float64))[1] - 1  # floor(log2)
        for ell in np.unique(lev):
            sel = lev == ell
            span = 1 << int(ell)
            tab = table[int(ell)]
            out[sel] = tab[a[sel]] | tab[b[sel] - span]
        return out

    popcount = lambda masks: np.bitwise_count(masks).sum(axis=1).astype(np.int64)

    # Inner (block-aligned, subset of window) and outer (superset) spans.
    win_lo = p + 1  # first window position
    b_in_lo = -(-win_lo // B)
    b_in_hi = t // B
    b_out_lo = win_lo // B
    b_out_hi = (t - 1) // B + 1

    has_inner = b_in_hi > b_in_lo
    lower = np.zeros(len(p), dtype=np.int64)
    if has_inner.any():
        lower[has_inner] = popcount(range_or(b_in_lo[has_inner], b_in_hi[has_inner]))

    decided = lower >= capacity  # definite misses
    # The outer (superset) bound is only consulted where the inner bound
    # was inconclusive — usually a tiny residue of the candidates.
    und = np.flatnonzero(~decided)
    if len(und) == 0:
        return decided
    upper = popcount(range_or(b_out_lo[und], b_out_hi[und]))
    amb = und[upper >= capacity]
    if len(amb) == 0:
        return decided

    # Exact resolution: inner mask OR edge positions, slot by slot.
    pa, ta = p[amb], t[amb]
    ia = has_inner[amb]
    acc = np.zeros((len(amb), words), dtype=np.uint64)
    if ia.any():
        acc[ia] = range_or(b_in_lo[amb][ia], b_in_hi[amb][ia])
    inner_start = np.where(ia, b_in_lo[amb] * B, ta)
    inner_end = np.where(ia, b_in_hi[amb] * B, ta)
    rows = np.arange(len(amb))
    left_stop = np.minimum(inner_start, ta)
    right_stop = np.maximum(inner_end, pa + 1)
    for kslot in range(2 * B - 2):
        pos_l = pa + 1 + kslot
        pos_r = ta - 1 - kslot
        valid_l = pos_l < left_stop
        valid_r = pos_r >= right_stop
        if not (valid_l.any() or valid_r.any()):
            break
        for pos, valid in ((pos_l, valid_l), (pos_r, valid_r)):
            if not valid.any():
                continue
            safe = np.where(valid, pos, 0)
            acc[rows, widx[safe]] |= np.where(valid, bit[safe], np.uint64(0))
    decided[amb] = popcount(acc) >= capacity
    return decided


def fa_miss_counts(
    keys: Sequence[int] | np.ndarray, capacities: Sequence[int]
) -> dict[int, int]:
    """Fully-associative LRU misses at every capacity from one profile.

    One Olken reuse-distance pass (``locality.reuse_distances``) predicts
    the whole capacity spectrum — the classic use of stack distances and
    the reason a distance profile is worth caching.  Equivalent to (but
    far cheaper than) simulating ``simulate_cache`` once per capacity.
    """
    distances = reuse_distances(np.asarray(keys, dtype=np.int64))
    return {int(c): miss_count(distances, int(c)) for c in capacities}
