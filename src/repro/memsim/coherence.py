"""Per-line MSI coherence oracle (the dynamic side of sharing analysis).

Replays an interleaved multi-thread access stream at cache-line
granularity through the minimal owner-tracking view of an MSI
(Modified / Shared / Invalid) protocol:

* each line has a *valid set* ``V`` — the threads currently holding a
  readable copy — and an *ever set* ``E`` — the threads that have held
  one at any point;
* a read by thread ``t`` hits iff ``t ∈ V`` and adds ``t`` to ``V``
  (S state is shared freely among readers);
* a write by thread ``t`` invalidates every other copy: ``V = {t}``
  (M state is exclusive);
* a miss (``t ∉ V``) is a **cold miss** when ``t ∉ E`` (the thread
  never held the line) and an **invalidation miss** when ``t ∈ E``
  (the thread held the line and another thread's write took it away).

Capacity is deliberately infinite: the oracle isolates *coherence*
misses from capacity misses, which the reuse-distance machinery already
models.  This is the contract the static analyzer
(``repro.static.coherence``) is cross-validated against: invalidation
totals exact on synthetic kernels, bounded error on the benchmark
programs (DESIGN §10).

The oracle is exposed two ways: :func:`simulate_msi` on raw columns,
and :class:`CoherenceLevel`, a pluggable
:class:`~repro.memsim.levels.MemoryLevel` that carries the issuing
thread of every access (the one column the level protocol does not
pass) and reports its outcome through ``LevelResult.msi``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .geometry import ELEM_BYTES, L1_LINE_BYTES
from .levels import LevelResult


@dataclass(frozen=True)
class MSIResult:
    """Outcome of one MSI replay over an interleaved stream."""

    threads: int
    accesses: int
    #: distinct lines the stream touched
    lines: int
    #: per-thread compulsory line misses (first touch by that thread)
    cold: np.ndarray
    #: per-thread invalidation misses (line lost to another's write)
    invalidations: np.ndarray
    #: per-thread writes that invalidated at least one other copy
    upgrades: np.ndarray
    #: bool per access: True where the access was an invalidation miss
    invalidation_mask: np.ndarray

    @property
    def total_cold(self) -> int:
        return int(self.cold.sum())

    @property
    def total_invalidations(self) -> int:
        return int(self.invalidations.sum())

    @property
    def total_upgrades(self) -> int:
        return int(self.upgrades.sum())


def simulate_msi(
    lines: np.ndarray,
    writes: np.ndarray,
    thread_ids: np.ndarray,
    threads: int,
) -> MSIResult:
    """Replay the stream through the owner-tracking MSI automaton.

    ``lines`` are cache-line ids (any integer labels), ``writes`` the
    bool write mask, ``thread_ids`` the issuing thread of every access.
    """
    lines = np.asarray(lines, dtype=np.int64)
    writes = np.asarray(writes, dtype=bool)
    thread_ids = np.asarray(thread_ids, dtype=np.int64)
    n = len(lines)
    if len(writes) != n or len(thread_ids) != n:
        raise ValueError(
            f"column lengths differ: lines {n}, writes {len(writes)}, "
            f"threads {len(thread_ids)}"
        )
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if threads > 63:
        raise ValueError("the bitmask automaton supports at most 63 threads")
    uniq, compact = (
        np.unique(lines, return_inverse=True)
        if n
        else (np.empty(0, np.int64), np.empty(0, np.int64))
    )
    valid = np.zeros(len(uniq), dtype=np.int64)  # V as a thread bitmask
    ever = np.zeros(len(uniq), dtype=np.int64)  # E as a thread bitmask
    cold = np.zeros(threads, dtype=np.int64)
    inval = np.zeros(threads, dtype=np.int64)
    upgrades = np.zeros(threads, dtype=np.int64)
    mask = np.zeros(n, dtype=bool)
    compact_l = compact.tolist()
    writes_l = writes.tolist()
    tids_l = thread_ids.tolist()
    valid_l = valid.tolist()
    ever_l = ever.tolist()
    for i in range(n):
        line = compact_l[i]
        t = tids_l[i]
        bit = 1 << t
        v = valid_l[line]
        if not v & bit:
            if ever_l[line] & bit:
                inval[t] += 1
                mask[i] = True
            else:
                cold[t] += 1
        if writes_l[i]:
            if v & ~bit:
                upgrades[t] += 1
            valid_l[line] = bit
        else:
            valid_l[line] = v | bit
        ever_l[line] |= bit
    return MSIResult(
        threads=threads,
        accesses=n,
        lines=len(uniq),
        cold=cold,
        invalidations=inval,
        upgrades=upgrades,
        invalidation_mask=mask,
    )


@dataclass(frozen=True)
class CoherenceLevel:
    """A pluggable MSI coherence level for :class:`MemoryHierarchy`.

    The level protocol passes addresses and writes but not issuing
    threads, so the thread column is bound at construction (aligned
    with the *full* stream the hierarchy simulates; the level must
    observe the full stream, ``source=None``).  ``unit`` says how to
    reduce addresses to line ids: ``"elements"`` divides by
    ``line_bytes // elem_bytes`` (canonical global keys),
    ``"bytes"`` by ``line_bytes``.
    """

    thread_ids: np.ndarray
    threads: int
    name: str = "msi"
    source: Optional[str] = None
    line_bytes: int = L1_LINE_BYTES
    elem_bytes: int = ELEM_BYTES
    unit: str = "elements"

    def simulate(
        self,
        addresses: np.ndarray,
        writes: np.ndarray,
        engine: Optional[str] = None,
        upstream: Optional[LevelResult] = None,
    ) -> LevelResult:
        if len(addresses) != len(self.thread_ids):
            raise ValueError(
                f"coherence level bound to {len(self.thread_ids)} thread "
                f"ids but observes {len(addresses)} accesses; the level "
                f"must observe the full stream (source=None)"
            )
        divisor = (
            self.line_bytes // self.elem_bytes
            if self.unit == "elements"
            else self.line_bytes
        )
        if divisor < 1:
            raise ValueError(
                f"line_bytes {self.line_bytes} below elem_bytes "
                f"{self.elem_bytes}"
            )
        lines = np.asarray(addresses, dtype=np.int64) // divisor
        result = simulate_msi(lines, writes, self.thread_ids, self.threads)
        misses = result.total_cold + result.total_invalidations
        return LevelResult(
            name=self.name,
            accesses=len(addresses),
            misses=misses,
            line_bytes=self.line_bytes,
            miss=result.invalidation_mask,
            msi=result,
        )
