"""Machine models: cache/TLB geometry and the timing substitution.

The paper measures on two MIPS machines with identical L1s and 2-way
caches throughout (§4.2):

* SGI **Octane** (R10K): L1 32 KB / 32 B lines, L2 1 MB / 128 B lines,
  64-entry TLB;
* SGI **Origin2000** (R12K): same but a 4 MB L2.

Those are reproduced structurally below.  Because a pure-Python simulator
cannot sweep 2K×2K meshes, each machine has a ``scaled`` variant: cache
capacities and TLB entries shrink by the same factor as the data set, so
the data:cache ratio — which determines every qualitative result — is
preserved.  EXPERIMENTS.md records the factor per experiment.

Execution time is synthesized from miss counts with an additive penalty
model (a documented substitution for the hardware's wall clock): the
*shape* of Fig. 10 comes from miss counts, which we measure exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .cache import CacheConfig
from .dram import DRAMConfig
from .geometry import L1_LINE_BYTES, L2_LINE_BYTES, PAGE_BYTES


@dataclass(frozen=True)
class TLBConfig:
    """Fully-associative LRU TLB."""

    entries: int
    page_bytes: int

    def scaled(self, factor: float) -> "TLBConfig":
        return TLBConfig(max(4, int(self.entries * factor)), self.page_bytes)

    def as_cache(self) -> CacheConfig:
        return CacheConfig(
            "tlb", self.entries * self.page_bytes, self.page_bytes, 0
        )


@dataclass(frozen=True)
class TimingModel:
    """Additive cycle costs per event (calibrated to MIPS-era ratios)."""

    cycles_per_access: float = 1.0
    l1_miss_cycles: float = 10.0  # L1 miss that hits in L2
    l2_miss_cycles: float = 90.0  # memory access
    tlb_miss_cycles: float = 60.0  # software-assisted reload
    clock_mhz: float = 300.0
    #: sustained memory bandwidth; memory time is also bounded below by
    #: transferred bytes / bandwidth (the paper's effective-bandwidth lens)
    bandwidth_mb_s: float = 400.0


@dataclass(frozen=True)
class MachineConfig:
    name: str
    l1: CacheConfig
    l2: CacheConfig
    tlb: TLBConfig
    timing: TimingModel = TimingModel()
    #: memory device behind the L2 (row-buffer and energy accounting);
    #: deliberately not scaled — DRAM pages do not shrink with the data set
    dram: DRAMConfig = DRAMConfig()

    def scaled(self, factor: float, suffix: str = "") -> "MachineConfig":
        """Shrink the hierarchy with the data set (see module docstring)."""
        return replace(
            self,
            name=f"{self.name}{suffix or f'/x{factor:g}'}",
            l1=self.l1.scaled(factor),
            l2=self.l2.scaled(factor),
            tlb=self.tlb.scaled(factor),
        )


def octane() -> MachineConfig:
    """SGI Octane (R10K): 32 KB L1, 1 MB L2, 64-entry TLB (§4.2)."""
    return MachineConfig(
        name="octane",
        l1=CacheConfig("L1", 32 * 1024, L1_LINE_BYTES, 2),
        l2=CacheConfig("L2", 1024 * 1024, L2_LINE_BYTES, 2),
        tlb=TLBConfig(64, PAGE_BYTES),
    )


def origin2000() -> MachineConfig:
    """SGI Origin2000 (R12K): 32 KB L1, 4 MB L2, 64-entry TLB (§4.2)."""
    return MachineConfig(
        name="origin2000",
        l1=CacheConfig("L1", 32 * 1024, L1_LINE_BYTES, 2),
        l2=CacheConfig("L2", 4 * 1024 * 1024, L2_LINE_BYTES, 2),
        tlb=TLBConfig(64, PAGE_BYTES),
    )


def scaled_machine(
    base: MachineConfig,
    l1_bytes: int,
    l2_bytes: int,
    tlb_entries: int,
    page_bytes: int,
    suffix: str = "/scaled",
) -> MachineConfig:
    """A hand-scaled hierarchy (per-application, see EXPERIMENTS.md).

    Line sizes and associativities are preserved; capacities are chosen
    per level so the dimensionless ratios that drive each level's
    behaviour survive the smaller data sets: rows-per-L1 (spatial/stencil
    reuse), data-per-L2 (capacity misses across phases), and
    streams-per-TLB-entry (page thrash under fusion).
    """
    return replace(
        base,
        name=base.name + suffix,
        l1=CacheConfig("L1", l1_bytes, base.l1.line_bytes, base.l1.assoc),
        l2=CacheConfig("L2", l2_bytes, base.l2.line_bytes, base.l2.assoc),
        tlb=TLBConfig(tlb_entries, page_bytes),
    )


MACHINES = {
    "octane": octane,
    "origin2000": origin2000,
}
