"""The single source of cache-level geometry constants.

Line sizes, page size, and the element width used to convert between
byte capacities and element capacities were historically re-spelled in
three places — the cache model, the machine models, and the static
analyzer's capacity math (``l1_bytes // 8`` in the CLI and tuner).  They
live here once now; every consumer derives from :class:`CacheGeometry`
or the module constants, so the bytes-moved accounting (misses × line
size per level) agrees across the simulator, the static predictor, and
the bandwidth reports.

The values are the paper's machines (§4.2): both the Octane and the
Origin2000 use 32 B L1 lines, 128 B L2 lines, 16 KB pages, and 8-byte
(double-precision) array elements.  Scaled machines keep line sizes, so
these constants stay correct for every per-application hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

#: bytes per array element (double precision, the paper's data type)
ELEM_BYTES = 8
#: L1 cache line size in bytes (Octane and Origin2000 alike)
L1_LINE_BYTES = 32
#: L2 cache line size in bytes
L2_LINE_BYTES = 128
#: virtual-memory page size (the TLB's translation granularity)
PAGE_BYTES = 16 * 1024


def elems(capacity_bytes: int, elem_bytes: int = ELEM_BYTES) -> int:
    """A byte capacity as a whole number of array elements."""
    return int(capacity_bytes) // elem_bytes


@dataclass(frozen=True)
class CacheGeometry:
    """Level capacities plus the shared line/element constants.

    The bridge between byte-denominated machine descriptions and the
    element-denominated static analyses: ``l1_elems``/``l2_elems`` feed
    :meth:`repro.static.profile.StaticProfile.miss_count`, and the line
    sizes convert predicted misses into predicted bytes moved.
    """

    l1_bytes: int
    l2_bytes: int
    l1_line_bytes: int = L1_LINE_BYTES
    l2_line_bytes: int = L2_LINE_BYTES
    elem_bytes: int = ELEM_BYTES

    @property
    def l1_elems(self) -> int:
        return elems(self.l1_bytes, self.elem_bytes)

    @property
    def l2_elems(self) -> int:
        return elems(self.l2_bytes, self.elem_bytes)

    @classmethod
    def from_machine(cls, machine) -> "CacheGeometry":
        """Geometry of a :class:`~repro.memsim.MachineConfig`."""
        return cls(
            l1_bytes=machine.l1.size_bytes,
            l2_bytes=machine.l2.size_bytes,
            l1_line_bytes=machine.l1.line_bytes,
            l2_line_bytes=machine.l2.line_bytes,
        )

    @classmethod
    def from_spec(cls, spec) -> "CacheGeometry":
        """Geometry of anything with ``l1_bytes``/``l2_bytes`` attributes
        (e.g. :class:`repro.programs.registry.MachineSpec`); line sizes
        are the shared constants, which every scaled machine preserves."""
        return cls(l1_bytes=spec.l1_bytes, l2_bytes=spec.l2_bytes)
