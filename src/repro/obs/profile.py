"""Rendering helpers for ``repro profile`` and ``repro runs``.

Turns a pre-order list of spans (either :class:`~repro.obs.spans.SpanEvent`
records or schema-v1 ``span`` event dicts) into the indented
time-and-memory tree the CLI prints, and a metrics delta into an aligned
block.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from .spans import SpanEvent

_SpanLike = Union[SpanEvent, Mapping[str, object]]


def _get(span: _SpanLike, field: str, default: object = None) -> object:
    if isinstance(span, SpanEvent):
        mapping = {
            "name": span.name,
            "depth": span.depth,
            "dur_s": span.duration_s,
            "peak_kb": span.peak_kb,
            "attrs": span.attrs,
        }
        return mapping.get(field, default)
    return span.get(field, default)


def _attr_note(attrs: Mapping[str, object]) -> str:
    """A compact, stable rendering of the most informative attributes."""
    keep = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, (int, float, str, bool)):
            keep.append(f"{key}={value}")
    return " ".join(keep[:4])


def format_span_tree(
    spans: Sequence[_SpanLike],
    title: Optional[str] = None,
) -> str:
    """Indented span tree with seconds and (when tracked) peak MB."""
    has_memory = any(_get(s, "peak_kb") is not None for s in spans)
    name_width = max(
        [len("span") + 0]
        + [len(str(_get(s, "name"))) + 2 * int(_get(s, "depth", 0)) for s in spans]
    )
    headers = ["span".ljust(name_width), "seconds".rjust(9)]
    if has_memory:
        headers.append("peak MB".rjust(9))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(headers) + "  ")
    lines.append("  ".join("-" * len(h) for h in headers))
    for s in spans:
        indent = "  " * int(_get(s, "depth", 0))
        cells = [
            (indent + str(_get(s, "name"))).ljust(name_width),
            f"{float(_get(s, 'dur_s', 0.0)):9.4f}",
        ]
        if has_memory:
            peak_kb = _get(s, "peak_kb")
            cells.append(
                f"{float(peak_kb) / 1024.0:9.2f}" if peak_kb is not None else " " * 9
            )
        note = _attr_note(_get(s, "attrs", {}) or {})
        lines.append("  ".join(cells) + ("  " + note if note else ""))
    return "\n".join(lines)


def format_metric_delta(delta: Mapping[str, Mapping[str, float]]) -> str:
    """Aligned ``name +delta`` / ``name =value`` block for one spec."""
    counters = dict(delta.get("counters", {}))
    gauges = dict(delta.get("gauges", {}))
    if not counters and not gauges:
        return "metric deltas: (none)"
    width = max(len(n) for n in [*counters, *gauges])
    lines = ["metric deltas:"]
    for name in sorted(counters):
        value = counters[name]
        shown = int(value) if float(value).is_integer() else value
        lines.append(f"  {name.ljust(width)}  {shown:+,}")
    for name in sorted(gauges):
        value = gauges[name]
        shown = int(value) if float(value).is_integer() else value
        lines.append(f"  {name.ljust(width)}  ={shown:,}")
    return "\n".join(lines)
