"""The run-event schema: versioned, validated, JSONL-friendly.

Every observability sink in :mod:`repro.obs` speaks one event
vocabulary, serialized as one JSON object per line (JSONL).  The schema
is versioned by :data:`SCHEMA_VERSION`; consumers must ignore events
whose ``v`` they do not understand, and producers must never change the
meaning of an existing field within a version.

Schema v1
---------

Common required fields on every event:

``v``
    (int) schema version, currently ``1``.
``kind``
    (str) one of :data:`EVENT_KINDS`.
``ts``
    (float) Unix timestamp (``time.time()``) at emission.

Per-kind required fields:

``run_start``
    ``run_id`` (str), ``total`` (int) — number of specs in the run.
``spec_start``
    ``index`` (int), ``program`` (str), ``level`` (str).
``span``
    ``name`` (str), ``path`` (str, dotted ancestry), ``depth`` (int),
    ``start_s`` (float, seconds since the spec started),
    ``dur_s`` (float), ``attrs`` (object).
    Optional: ``peak_kb`` (float) — tracemalloc peak during the span.
``metrics``
    ``counters`` (object: name -> delta), ``gauges`` (object: name ->
    value) — the registry delta observed over one spec.
``spec_end``
    ``index`` (int), ``program`` (str), ``level`` (str),
    ``seconds`` (float).  Optional: ``trace_length`` (int).
``run_end``
    ``run_id`` (str), ``completed`` (int), ``total`` (int),
    ``seconds`` (float).  Optional: ``slowest`` (object with
    ``program``/``level``/``seconds``).

:func:`validate_event` enforces exactly the table above and raises
:class:`SchemaError` naming the first violation.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional

#: Current version of the run-event schema documented above.
SCHEMA_VERSION = 1

#: File name of the per-run event log inside ``runs/<id>/``.
RUN_LOG_FILENAME = "events.jsonl"


class SchemaError(ValueError):
    """An event does not conform to the documented schema."""


_NUMBER = (int, float)

#: kind -> {field: accepted type(s)} for *required* per-kind fields
EVENT_KINDS: dict[str, dict[str, tuple[type, ...]]] = {
    "run_start": {"run_id": (str,), "total": (int,)},
    "spec_start": {"index": (int,), "program": (str,), "level": (str,)},
    "span": {
        "name": (str,),
        "path": (str,),
        "depth": (int,),
        "start_s": _NUMBER,
        "dur_s": _NUMBER,
        "attrs": (dict,),
    },
    "metrics": {"counters": (dict,), "gauges": (dict,)},
    "spec_end": {
        "index": (int,),
        "program": (str,),
        "level": (str,),
        "seconds": _NUMBER,
    },
    "run_end": {
        "run_id": (str,),
        "completed": (int,),
        "total": (int,),
        "seconds": _NUMBER,
    },
}

#: kind -> {field: accepted type(s)} for *optional* per-kind fields
OPTIONAL_FIELDS: dict[str, dict[str, tuple[type, ...]]] = {
    "span": {"peak_kb": _NUMBER},
    "spec_end": {"trace_length": (int,)},
    "run_end": {"slowest": (dict,)},
}


def make_event(kind: str, ts: Optional[float] = None, **fields: object) -> dict:
    """Build a schema-conforming event dict (validated before return)."""
    event: dict[str, object] = {"v": SCHEMA_VERSION, "kind": kind, "ts": time.time() if ts is None else ts}
    event.update(fields)
    validate_event(event)
    return event


def validate_event(event: Mapping[str, object]) -> None:
    """Raise :class:`SchemaError` unless ``event`` conforms to schema v1."""
    if not isinstance(event, Mapping):
        raise SchemaError(f"event must be a mapping, got {type(event).__name__}")
    v = event.get("v")
    if not isinstance(v, int) or isinstance(v, bool):
        raise SchemaError("event missing integer schema version field 'v'")
    if v != SCHEMA_VERSION:
        raise SchemaError(f"unknown schema version {v}; this build speaks v{SCHEMA_VERSION}")
    kind = event.get("kind")
    if kind not in EVENT_KINDS:
        raise SchemaError(f"unknown event kind {kind!r}; expected one of {sorted(EVENT_KINDS)}")
    ts = event.get("ts")
    if not isinstance(ts, _NUMBER) or isinstance(ts, bool):
        raise SchemaError(f"{kind}: missing numeric 'ts'")
    required = EVENT_KINDS[kind]
    optional = OPTIONAL_FIELDS.get(kind, {})
    for field, types in required.items():
        value = event.get(field)
        if field not in event or not isinstance(value, types) or isinstance(value, bool):
            raise SchemaError(
                f"{kind}: field {field!r} must be "
                f"{'/'.join(t.__name__ for t in types)}, got {value!r}"
            )
    for field, types in optional.items():
        if field in event:
            value = event[field]
            if not isinstance(value, types) or isinstance(value, bool):
                raise SchemaError(
                    f"{kind}: optional field {field!r} must be "
                    f"{'/'.join(t.__name__ for t in types)}, got {value!r}"
                )
    allowed = {"v", "kind", "ts", *required, *optional}
    extra = set(event) - allowed
    if extra:
        raise SchemaError(f"{kind}: unexpected field(s) {sorted(extra)}")
