"""Observability subsystem: spans, metrics, run logs, profiles.

One vocabulary threaded through the whole stack:

* :func:`span` / :class:`SpanCollector` — nested wall-clock (and
  optional peak-memory) tracing emitted by the compiler pipeline, trace
  generation, and every simulation stage;
* :data:`REGISTRY` (:class:`MetricsRegistry`) — process-wide counters
  and gauges (cache hits, engine fallbacks, verifier diagnostics);
* :class:`RunLog` + :class:`TraceConfig` — per-run JSONL event sinks
  under ``runs/<id>/events.jsonl`` with a versioned, validated schema;
* :func:`format_span_tree` / :func:`format_metric_delta` — the
  renderings ``repro profile`` and ``repro runs`` print.

The package depends only on the standard library, so any layer of the
repo may import it without cycles.
"""

from .events import (
    EVENT_KINDS,
    OPTIONAL_FIELDS,
    RUN_LOG_FILENAME,
    SCHEMA_VERSION,
    SchemaError,
    make_event,
    validate_event,
)
from .metrics import REGISTRY, MetricsRegistry, gauge, inc, snapshot
from .profile import format_metric_delta, format_span_tree
from .runlog import (
    DEFAULT_RUNS_DIR,
    RunLog,
    TraceConfig,
    list_runs,
    new_run_id,
    runs_root,
    spec_logging,
    summarize_run,
)
from .spans import SpanCollector, SpanEvent, current_collector, span

__all__ = [
    "DEFAULT_RUNS_DIR",
    "EVENT_KINDS",
    "OPTIONAL_FIELDS",
    "REGISTRY",
    "RUN_LOG_FILENAME",
    "SCHEMA_VERSION",
    "MetricsRegistry",
    "RunLog",
    "SchemaError",
    "SpanCollector",
    "SpanEvent",
    "TraceConfig",
    "current_collector",
    "format_metric_delta",
    "format_span_tree",
    "gauge",
    "inc",
    "list_runs",
    "make_event",
    "new_run_id",
    "runs_root",
    "snapshot",
    "span",
    "spec_logging",
    "summarize_run",
    "validate_event",
]
