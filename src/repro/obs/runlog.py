"""Per-run JSONL event logs under ``runs/<id>/events.jsonl``.

Every harness run (serial or :class:`~repro.harness.ParallelRunner`)
that enables the events sink gets a run directory holding one
append-only JSONL file of schema-v1 events (see :mod:`repro.obs.events`).
Worker processes append directly — each event is a single short
``write()`` of one line, so concurrent appends from forked workers do
not interleave in practice — and ``repro runs`` summarizes the logs
afterwards.

:class:`TraceConfig` is the sink configuration object the experiment
front door (:func:`repro.harness.run`) and the parallel runner accept.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from .events import RUN_LOG_FILENAME, SchemaError, make_event, validate_event
from .metrics import REGISTRY, MetricsRegistry
from .spans import SpanCollector

#: Default directory run logs land in (overridable via ``REPRO_RUNS_DIR``).
DEFAULT_RUNS_DIR = "runs"


@dataclass(frozen=True)
class TraceConfig:
    """Observability sinks for one experiment run.

    ``events``
        write a ``runs/<id>/events.jsonl`` run log;
    ``runs_root`` / ``run_id``
        where the run directory is created (defaults: ``runs/`` or
        ``$REPRO_RUNS_DIR``; a fresh timestamped id);
    ``memory``
        track ``tracemalloc`` peaks per span (slower; ``repro profile``
        turns this on);
    ``progress``
        stream live completed/total + ETA + slowest-spec lines.
    """

    events: bool = False
    runs_root: Optional[str] = None
    run_id: Optional[str] = None
    memory: bool = False
    progress: bool = False


def runs_root(root: Optional[Union[str, Path]] = None) -> Path:
    """The directory run logs live under."""
    if root is not None:
        return Path(root)
    return Path(os.environ.get("REPRO_RUNS_DIR", DEFAULT_RUNS_DIR))


def new_run_id() -> str:
    """A sortable, collision-resistant run id."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:6]


class RunLog:
    """Append-only writer/reader for one run's ``events.jsonl``."""

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / RUN_LOG_FILENAME

    @classmethod
    def create(
        cls,
        root: Optional[Union[str, Path]] = None,
        run_id: Optional[str] = None,
    ) -> "RunLog":
        run_dir = runs_root(root) / (run_id or new_run_id())
        run_dir.mkdir(parents=True, exist_ok=True)
        return cls(run_dir)

    @property
    def run_id(self) -> str:
        return self.run_dir.name

    def write(self, event: dict) -> None:
        """Validate and append one event as one JSONL line."""
        validate_event(event)
        line = json.dumps(event, sort_keys=True) + "\n"
        # open/append/close per event: safe across forked workers, and a
        # run emits few enough events that the syscall cost is noise
        with open(self.path, "a") as handle:
            handle.write(line)

    def events(self) -> list[dict]:
        """Parse the log; corrupt or unknown-schema lines are skipped."""
        out: list[dict] = []
        if not self.path.exists():
            return out
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
                validate_event(event)
            except (ValueError, SchemaError):
                continue
            out.append(event)
        return out


def list_runs(root: Optional[Union[str, Path]] = None) -> list[Path]:
    """Run directories (those containing an event log), oldest first."""
    base = runs_root(root)
    if not base.is_dir():
        return []
    return sorted(
        p for p in base.iterdir() if (p / RUN_LOG_FILENAME).is_file()
    )


def summarize_run(run_dir: Union[str, Path]) -> dict:
    """Aggregate one run log into the summary ``repro runs`` prints."""
    log = RunLog(run_dir)
    events = log.events()
    total = completed = 0
    seconds = 0.0
    started: Optional[float] = None
    slowest: Optional[dict] = None
    levels: set[str] = set()
    programs: set[str] = set()
    for event in events:
        if started is None:
            started = float(event["ts"])
        kind = event["kind"]
        if kind == "run_start":
            total = int(event["total"])
        elif kind == "spec_end":
            completed += 1
            seconds += float(event["seconds"])
            programs.add(str(event["program"]))
            levels.add(str(event["level"]))
            if slowest is None or event["seconds"] > slowest["seconds"]:
                slowest = {
                    "program": event["program"],
                    "level": event["level"],
                    "seconds": float(event["seconds"]),
                }
        elif kind == "run_end":
            total = int(event["total"])
            seconds = float(event["seconds"])
    return {
        "run_id": log.run_id,
        "path": str(log.path),
        "events": len(events),
        "started": started,
        "total": total or completed,
        "completed": completed,
        "seconds": seconds,
        "slowest": slowest,
        "programs": sorted(programs),
        "levels": sorted(levels),
    }


@contextmanager
def spec_logging(
    log: Optional[RunLog],
    index: int,
    program: str,
    level: str,
    memory: bool = False,
) -> Iterator[SpanCollector]:
    """Collect one spec's spans + metrics delta, streaming to ``log``.

    Yields the active :class:`SpanCollector`; on exit it carries the
    spec's wall-clock ``seconds`` and metrics-registry ``metrics`` delta,
    and — when a log is given — the spec_start/span/metrics/spec_end
    events have been appended.
    """
    before = REGISTRY.snapshot()
    if log is not None:
        log.write(make_event("spec_start", index=index, program=program, level=level))
    collector = SpanCollector(memory=memory)
    t0 = time.perf_counter()
    try:
        with collector:
            yield collector
    finally:
        collector.seconds = time.perf_counter() - t0
        collector.metrics = MetricsRegistry.delta(before, REGISTRY.snapshot())
        if log is not None:
            for ev in collector.events:
                log.write(ev.to_event())
            if collector.metrics["counters"] or collector.metrics["gauges"]:
                log.write(make_event("metrics", **collector.metrics))
            log.write(
                make_event(
                    "spec_end",
                    index=index,
                    program=program,
                    level=level,
                    seconds=round(collector.seconds, 9),
                )
            )
