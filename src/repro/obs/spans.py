"""Span-based tracing: nested, timed, optionally memory-profiled blocks.

``span("fusion")`` times a block; inside an active :class:`SpanCollector`
the spans nest (the collector tracks the open-span stack and records
events in pre-order), carry free-form attributes (loop counts, engine
names, miss counts — whatever the instrumented site knows), and — when
the collector enables it — a ``tracemalloc`` peak-memory figure per
span, with child peaks propagated to their parents.

Outside any collector a span still measures its own duration (so call
sites can thread wall-clock into legacy ``timings`` dicts) but records
nothing — the overhead is two ``perf_counter`` calls.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .events import make_event

_ACTIVE: contextvars.ContextVar[Optional["SpanCollector"]] = contextvars.ContextVar(
    "repro_obs_collector", default=None
)


@dataclass
class SpanEvent:
    """One finished (or still-open) span."""

    name: str
    path: str  # dotted ancestry, e.g. "compile.fusion"
    depth: int
    start_s: float  # seconds since the collector was entered
    duration_s: float = 0.0
    peak_kb: Optional[float] = None  # tracemalloc peak, when tracked
    attrs: dict = field(default_factory=dict)

    def to_event(self, ts: Optional[float] = None) -> dict:
        """Serialize as a schema-v1 ``span`` event dict."""
        extra = {} if self.peak_kb is None else {"peak_kb": round(self.peak_kb, 3)}
        return make_event(
            "span",
            ts=ts,
            name=self.name,
            path=self.path,
            depth=self.depth,
            start_s=round(self.start_s, 9),
            dur_s=round(self.duration_s, 9),
            attrs={k: _plain(v) for k, v in self.attrs.items()},
            **extra,
        )


def _plain(value: object) -> object:
    """JSON-safe attribute values (tuples become lists, exotica become str)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return str(value)


class SpanCollector:
    """Collects the spans opened while it is the active collector.

    Use as a context manager; ``events`` holds :class:`SpanEvent` records
    in pre-order (parents before children) once the block exits.  With
    ``memory=True`` the collector starts ``tracemalloc`` (if not already
    tracing) and attaches a peak-kB figure to every span.
    """

    def __init__(self, memory: bool = False) -> None:
        self.memory = memory
        self.events: list[SpanEvent] = []
        self._stack: list[SpanEvent] = []
        self._token: Optional[contextvars.Token] = None
        self._t0 = 0.0
        self._started_tracemalloc = False
        #: wall-clock of the whole collected block; set by spec_logging
        self.seconds: float = 0.0
        #: metrics-registry delta over the block; set by spec_logging
        self.metrics: dict = {}

    def __enter__(self) -> "SpanCollector":
        self._t0 = time.perf_counter()
        self._token = _ACTIVE.set(self)
        if self.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            tracemalloc.reset_peak()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False

    # -- span bookkeeping (used by the span() context manager) ----------

    def _open(self, name: str, attrs: dict) -> SpanEvent:
        path = ".".join([s.name for s in self._stack] + [name])
        ev = SpanEvent(
            name=name,
            path=path,
            depth=len(self._stack),
            start_s=time.perf_counter() - self._t0,
            attrs=attrs,
        )
        self.events.append(ev)  # pre-order: parents precede children
        self._stack.append(ev)
        if self.memory:
            import tracemalloc

            tracemalloc.reset_peak()
        return ev

    def _close(self, ev: SpanEvent, duration: float) -> None:
        self._stack.pop()
        ev.duration_s = duration
        if self.memory:
            import tracemalloc

            peak_kb = tracemalloc.get_traced_memory()[1] / 1024.0
            ev.peak_kb = max(peak_kb, ev.peak_kb or 0.0)
            if self._stack:
                parent = self._stack[-1]
                # a parent's peak is at least any child's peak
                parent.peak_kb = max(parent.peak_kb or 0.0, ev.peak_kb)
            tracemalloc.reset_peak()

    def tree_events(self) -> list[SpanEvent]:
        return list(self.events)


def current_collector() -> Optional[SpanCollector]:
    """The active :class:`SpanCollector`, or None when not collecting."""
    return _ACTIVE.get()


@contextmanager
def span(name: str, **attrs: object) -> Iterator[SpanEvent]:
    """Time a block; record it in the active collector when there is one.

    Yields the :class:`SpanEvent` so call sites can attach attributes
    after the fact (``sp.attrs["misses"] = n``) and read the measured
    ``duration_s`` once the block exits.
    """
    collector = _ACTIVE.get()
    if collector is None:
        ev = SpanEvent(name=name, path=name, depth=0, start_s=0.0, attrs=dict(attrs))
        t0 = time.perf_counter()
        try:
            yield ev
        finally:
            ev.duration_s = time.perf_counter() - t0
        return
    ev = collector._open(name, dict(attrs))
    t0 = time.perf_counter()
    try:
        yield ev
    finally:
        collector._close(ev, time.perf_counter() - t0)
