"""Static-profile-driven pipeline autotuner.

``tune(TuneRequest) -> TuneResult`` is the front door, symmetric with
``repro.harness.run``: enumerate legal pipeline candidates, rank them
by statically predicted misses (no tracing), dynamically validate only
the top-k frontier, and gate the committed ``BENCH_tune.json``
artifact against regressions via :func:`check_baseline`.
"""

from .cache import TuneCache
from .candidates import (
    ENABLERS,
    FUSION_LEVELS,
    candidate_fields,
    canonical_enabler_order,
    enumerate_candidates,
    make_candidate,
    neighbors,
    parse_signature,
    spec_signature,
)
from .tuner import (
    OBJECTIVES,
    CandidateScore,
    TuneRequest,
    TuneResult,
    check_baseline,
    static_score,
    tune,
)

__all__ = [
    "CandidateScore",
    "ENABLERS",
    "FUSION_LEVELS",
    "OBJECTIVES",
    "TuneCache",
    "TuneRequest",
    "TuneResult",
    "candidate_fields",
    "canonical_enabler_order",
    "check_baseline",
    "enumerate_candidates",
    "make_candidate",
    "neighbors",
    "parse_signature",
    "spec_signature",
    "static_score",
    "tune",
]
