"""The pipeline autotuner: ``tune(TuneRequest) -> TuneResult``.

The paper picks one pass order per program by a greedy heuristic (§4);
with the symbolic reuse profiles this repo can *search* instead.  The
loop is static-rank / dynamic-validate:

1. enumerate the legal candidate grid (:mod:`repro.tune.candidates`)
   plus the paper's named levels as baselines;
2. compile each pipeline and **dedup by compiled program text** — many
   pipelines converge to the same program (e.g. ``new`` vs ``fusion``:
   regrouping never edits the program), and the expensive symbolic
   analysis is per *distinct* program, not per pipeline;
3. statically score every distinct program: predicted L1+L2 misses at
   the target sizes (``objective="misses"``), or the multicore
   private-L1 + shared-L2 prediction (``objective="parallel-misses"``);
4. dynamically validate only the top-``k`` frontier through the
   existing ``run(RunRequest)`` harness (codegen tracer, TraceCache),
   and record whether the measured ordering confirms the static one.

Every candidate evaluation is content-addressed on disk
(:class:`~repro.tune.cache.TuneCache`), so an interrupted or
re-parameterized search resumes instead of re-analyzing; the loop
streams schema-v1 JSONL events (one spec per pipeline, the candidate
signature as the level label) and ``tune.*`` metrics via
:mod:`repro.obs`.

``check_baseline`` is the CI gate over a committed ``BENCH_tune.json``:
the tuned pipeline must never predict more misses than any named level,
and — for every pipeline whose committed analysis cost fits the time
budget — the prediction must reproduce under the current analyzer.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from ..core import compile_pipeline
from ..core.pm import OPT_LEVELS, PIPELINES, PipelineSpec, spec_to_json
from ..harness import RunRequest, TraceCache, format_table, run
from ..lang import Program, ReproError, validate
from ..memsim.geometry import CacheGeometry
from ..obs import RunLog, make_event, metrics, span, spec_logging
from ..programs import registry
from ..programs.registry import MachineSpec, build_fft
from ..static import analyze_program
from .cache import TuneCache
from .candidates import (
    ENABLERS,
    FUSION_LEVELS,
    enumerate_candidates,
    parse_signature,
    spec_signature,
)

#: objective names ``TuneRequest.objective`` accepts
OBJECTIVES = ("misses", "parallel-misses", "bytes")


@dataclass(frozen=True)
class TuneRequest:
    """Everything one autotuning run needs, symmetric with ``RunRequest``.

    ``program``
        a registry application name, ``"fft"`` (built at ``n`` from the
        first size, default 64), or a parsed :class:`~repro.lang.Program`;
    ``sizes``
        target parameter bindings the objective sums over (default: the
        registry entry's fig-10 size; required for Program objects);
    ``objective``
        ``"misses"`` ranks by predicted single-thread L1+L2 misses;
        ``"parallel-misses"`` by the multicore prediction — per-thread
        private L1 (including predicted coherence invalidation misses
        from the static sharing analyzer) plus shared L2 at
        ``threads``/``schedule``;
        ``"bytes"`` by predicted data moved — misses weighted by the
        per-level line size (:mod:`repro.memsim.geometry`), the static
        side of the effective-bandwidth report;
    ``enablers`` / ``fusion_levels`` / ``regroup``
        the candidate grid (see :func:`repro.tune.enumerate_candidates`);
        shrink these for programs whose fused analysis is expensive;
    ``levels``
        the named baselines the tuned pipeline is gated against;
    ``top_k`` / ``validate_top`` / ``engine``
        dynamic validation of the frontier through ``run(RunRequest)``;
    ``cache``
        content-addressed resumability: candidate evaluations
        (``tune-*``) and validation traces/results share one root;
    ``verify``
        certify candidate pass legality during compilation (on by
        default; named levels are certified by their own test suites).
    """

    program: Union[str, Program]
    sizes: Optional[Sequence[Mapping[str, int]]] = None
    steps: Optional[int] = None
    machine: Optional[MachineSpec] = None
    objective: str = "misses"
    threads: int = 4
    schedule: str = "static"
    enablers: Sequence[str] = ENABLERS
    fusion_levels: Sequence[int] = FUSION_LEVELS
    regroup: bool = True
    levels: Sequence[str] = OPT_LEVELS
    max_candidates: Optional[int] = None
    top_k: int = 3
    validate_top: bool = True
    engine: Optional[str] = None
    cache: Union[None, bool, str, Path] = True
    verify: bool = True
    name: Optional[str] = None
    trace: Optional[object] = None  # obs.TraceConfig


@dataclass
class CandidateScore:
    """One pipeline's static evaluation (and, if validated, measurement)."""

    label: str
    kind: str  # "named" | "candidate"
    signature: str
    spec: PipelineSpec
    score: float
    per_size: list[dict]
    text_hash: str
    analysis_seconds: float
    cached: bool = False
    deduped_from: Optional[str] = None
    measured: Optional[dict] = None

    def to_json(self) -> dict:
        out = {
            "label": self.label,
            "kind": self.kind,
            "signature": self.signature,
            "score": round(self.score, 6),
            "per_size": self.per_size,
            "text_hash": self.text_hash,
            "analysis_seconds": round(self.analysis_seconds, 3),
        }
        if self.deduped_from:
            out["deduped_from"] = self.deduped_from
        if self.measured is not None:
            out["measured"] = self.measured
        return out


@dataclass
class TuneResult:
    """The outcome of one :func:`tune` call."""

    request: TuneRequest
    program: str
    sizes: list[dict]
    steps: int
    l1_elems: int
    l2_elems: int
    objective: str
    named: list[CandidateScore]
    candidates: list[CandidateScore]  # ascending score
    validated: list[CandidateScore] = field(default_factory=list)
    rank_agreement: Optional[bool] = None
    run_dir: Optional[Path] = None
    seconds: float = 0.0

    @property
    def best(self) -> CandidateScore:
        """The best pipeline overall — named levels are legal points in
        the search space, so a restricted grid can still never "tune" to
        something worse than the paper's own levels."""
        return min(
            self.candidates + self.named,
            key=lambda c: (c.score, len(c.spec.steps), c.label),
        )

    @property
    def best_candidate(self) -> CandidateScore:
        return self.candidates[0]

    @property
    def best_named(self) -> CandidateScore:
        return min(self.named, key=lambda c: (c.score, c.label))

    @property
    def strict_win(self) -> bool:
        """Does a grid candidate beat *every* named level strictly?"""
        return (
            bool(self.named)
            and bool(self.candidates)
            and self.best_candidate.score < min(c.score for c in self.named)
        )

    def table(self, rows: int = 10) -> str:
        headers = ("pipeline", "kind", "predicted", "vs best named", "measured")
        base = self.best_named.score if self.named else 0.0
        body: list[list[object]] = []
        shown = sorted(
            self.named + self.candidates[:rows],
            key=lambda c: (c.score, c.label),
        )
        for c in shown:
            body.append([
                c.label,
                c.kind,
                f"{c.score:.0f}",
                f"{c.score / base:.3f}x" if base else "-",
                f"{c.measured['misses']:.0f}" if c.measured else "-",
            ])
        size = "; ".join(
            ", ".join(f"{k}={v}" for k, v in s.items()) or "(fixed size)"
            for s in self.sizes
        )
        return format_table(
            headers, body,
            title=f"{self.program} autotune ({self.objective} at {size}; "
            f"L1 {self.l1_elems} / L2 {self.l2_elems} elems)",
        )

    def to_json(self) -> dict:
        return {
            "sizes": self.sizes,
            "steps": self.steps,
            "l1_elems": self.l1_elems,
            "l2_elems": self.l2_elems,
            "objective": self.objective,
            "threads": self.request.threads if self.objective != "misses" else None,
            "schedule": self.request.schedule if self.objective != "misses" else None,
            "named": {c.label: c.to_json() for c in self.named},
            "best": {**self.best.to_json(), "spec": spec_to_json(self.best.spec)},
            "candidates_evaluated": len(self.candidates),
            "strict_win": self.strict_win,
            "validated": [c.to_json() for c in self.validated],
            "rank_agreement": self.rank_agreement,
            "seconds": round(self.seconds, 3),
        }


def _resolve_target(request: TuneRequest):
    """(name, program, sizes, steps, machine_spec) for any target kind."""
    if isinstance(request.program, str):
        if request.program == "fft":
            sizes = [dict(s) for s in (request.sizes or ({"n": 64},))]
            n = int(sizes[0].get("n", 64))
            program = validate(build_fft(n))
            return (
                request.name or f"fft{n}",
                program,
                sizes,
                request.steps or 1,
                request.machine or MachineSpec(),
            )
        entry = registry.get(request.program)
        program = validate(entry.build())
        sizes = [dict(s) for s in (request.sizes or (entry.default_params,))]
        steps = entry.steps if request.steps is None else request.steps
        return (
            request.name or request.program,
            program,
            sizes,
            steps,
            request.machine or entry.machine_spec,
        )
    if not request.sizes:
        raise ReproError("TuneRequest with a Program object requires sizes")
    return (
        request.name or request.program.name,
        request.program,
        [dict(s) for s in request.sizes],
        request.steps or 1,
        request.machine or MachineSpec(),
    )


def _program_params(program: Program, size: Mapping[str, int]) -> dict:
    """Restrict a size binding to the program's declared parameters
    (fft bakes its size in, so its binding carries a build-only ``n``)."""
    declared = set(program.params)
    return {k: v for k, v in size.items() if k in declared}


def _score_profile(
    profile,
    program: Program,
    sizes: Sequence[Mapping[str, int]],
    l1: int,
    l2: int,
    objective: str,
    threads: int,
    schedule: str,
    steps: int = 1,
) -> tuple[float, list[dict]]:
    """Evaluate one static profile under the objective; sum over sizes."""
    per_size: list[dict] = []
    total = 0.0
    for size in sizes:
        params = _program_params(program, size)
        if objective == "parallel-misses":
            from ..lang import AnalysisError
            from ..static import analyze_parallelism
            from ..static.coherence import analyze_coherence
            from ..static.multicore import predict_multicore

            parallelism = analyze_parallelism(program, params or None)
            pred = predict_multicore(
                profile, parallelism, params, threads=threads, schedule=schedule
            )
            try:
                # fold predicted invalidation misses into the private
                # view: a candidate that trades capacity misses for
                # line ping-pong should not win the grid
                coherence = analyze_coherence(
                    program, params or None, threads=threads,
                    schedule=schedule, steps=steps,
                    parallelism=parallelism, witnesses=False,
                )
                pred = pred.with_invalidations(coherence.invalidations)
            except AnalysisError:
                coherence = None  # outside the affine subset: capacity only
            l1m = pred.private_miss_count(l1)
            l2m = pred.shared_miss_count(l2)
        else:
            l1m = profile.miss_count(params, l1)
            l2m = profile.miss_count(params, l2)
        entry = {"params": dict(size), "l1": round(l1m, 3), "l2": round(l2m, 3)}
        if objective == "parallel-misses" and coherence is not None:
            entry["invalidations"] = coherence.total_invalidations
        if objective == "bytes":
            # predicted data moved: misses weighted by line size.  Every
            # machine (base and scaled) keeps the shared line geometry,
            # so the constants apply regardless of the capacity args.
            from ..memsim.geometry import L1_LINE_BYTES, L2_LINE_BYTES

            moved = l1m * L1_LINE_BYTES + l2m * L2_LINE_BYTES
            entry["bytes"] = round(moved, 3)
            total += moved
        else:
            total += l1m + l2m
        per_size.append(entry)
    return total, per_size


def static_score(
    program: Program,
    spec: PipelineSpec,
    steps: int,
    sizes: Sequence[Mapping[str, int]],
    l1_elems: int,
    l2_elems: int,
    objective: str = "misses",
    threads: int = 4,
    schedule: str = "static",
    verify: bool = False,
) -> tuple[float, list[dict], str, float]:
    """Compile + analyze one pipeline, uncached: the tuner's inner step.

    Returns ``(score, per_size, compiled_text_hash, analysis_seconds)``.
    """
    variant = compile_pipeline(program, spec, verify=verify)
    text_hash = hashlib.sha256(str(variant.program).encode()).hexdigest()[:16]
    t0 = time.perf_counter()
    profile = analyze_program(variant.program, steps=steps)
    score, per_size = _score_profile(
        profile, variant.program, sizes, l1_elems, l2_elems,
        objective, threads, schedule, steps,
    )
    return score, per_size, text_hash, time.perf_counter() - t0


def _cache_root(cache: Union[None, bool, str, Path]) -> Optional[Path]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return TuneCache().root
    return Path(cache)


def tune(request: TuneRequest) -> TuneResult:
    """Run one autotuning search; the single front door."""
    if request.objective not in OBJECTIVES:
        raise ReproError(
            f"unknown objective {request.objective!r}; expected one of {OBJECTIVES}"
        )
    name, program, sizes, steps, machine_spec = _resolve_target(request)
    geometry = CacheGeometry.from_spec(machine_spec)
    l1_elems = geometry.l1_elems
    l2_elems = geometry.l2_elems
    source_text = str(program)

    named_specs = [(level, PIPELINES[level], "named") for level in request.levels]
    fusion_levels = tuple(dict.fromkeys(int(v) for v in request.fusion_levels))
    grid = enumerate_candidates(
        enablers=tuple(request.enablers),
        fusion_levels=fusion_levels,
        regroup=request.regroup,
        max_candidates=request.max_candidates,
    )
    work = named_specs + [(spec_signature(s), s, "candidate") for s in grid]
    metrics.inc("tune.candidates", len(grid))

    root = _cache_root(request.cache)
    tcache = TuneCache(root) if root is not None else None

    cfg = request.trace
    log = RunLog.create(cfg.runs_root, cfg.run_id) if cfg and cfg.events else None
    if log is not None:
        log.write(make_event("run_start", run_id=log.run_id, total=len(work)))

    seen_text: dict[str, CandidateScore] = {}
    named: list[CandidateScore] = []
    candidates: list[CandidateScore] = []
    t0 = time.perf_counter()
    for index, (label, spec, kind) in enumerate(work):
        signature = spec_signature(spec)
        ckey = (
            tcache.key(
                source_text, signature, steps, sizes, l1_elems, l2_elems,
                request.objective, request.threads, request.schedule,
            )
            if tcache is not None
            else None
        )
        with spec_logging(
            log, index, name, label, memory=bool(cfg and cfg.memory)
        ):
            entry = tcache.load(ckey) if tcache is not None else None
            if entry is not None:
                result = CandidateScore(
                    label=label,
                    kind=kind,
                    signature=signature,
                    spec=spec,
                    score=float(entry["score"]),
                    per_size=list(entry["per_size"]),
                    text_hash=str(entry["text_hash"]),
                    analysis_seconds=float(entry["analysis_seconds"]),
                    cached=True,
                    deduped_from=entry.get("deduped_from"),
                )
            else:
                with span("tune-evaluate", pipeline=label, kind=kind):
                    verify = request.verify and kind == "candidate"
                    variant = compile_pipeline(program, spec, verify=verify)
                    text_hash = hashlib.sha256(
                        str(variant.program).encode()
                    ).hexdigest()[:16]
                    prior = seen_text.get(text_hash)
                    if prior is not None:
                        metrics.inc("tune.dedup.hits")
                        result = CandidateScore(
                            label=label,
                            kind=kind,
                            signature=signature,
                            spec=spec,
                            score=prior.score,
                            per_size=[dict(p) for p in prior.per_size],
                            text_hash=text_hash,
                            analysis_seconds=0.0,
                            deduped_from=prior.label,
                        )
                    else:
                        ta = time.perf_counter()
                        profile = analyze_program(variant.program, steps=steps)
                        score, per_size = _score_profile(
                            profile, variant.program, sizes, l1_elems, l2_elems,
                            request.objective, request.threads,
                            request.schedule, steps,
                        )
                        metrics.inc("tune.evaluations")
                        result = CandidateScore(
                            label=label,
                            kind=kind,
                            signature=signature,
                            spec=spec,
                            score=score,
                            per_size=per_size,
                            text_hash=text_hash,
                            analysis_seconds=time.perf_counter() - ta,
                        )
                if tcache is not None:
                    stored = result.to_json()
                    stored.pop("measured", None)
                    tcache.store(ckey, stored)
        if result.text_hash not in seen_text:
            seen_text[result.text_hash] = result
        (named if kind == "named" else candidates).append(result)

    candidates.sort(key=lambda c: (c.score, len(c.spec.steps), c.label))

    outcome = TuneResult(
        request=request,
        program=name,
        sizes=[dict(s) for s in sizes],
        steps=steps,
        l1_elems=l1_elems,
        l2_elems=l2_elems,
        objective=request.objective,
        named=named,
        candidates=candidates,
    )

    if request.validate_top and request.top_k > 0 and candidates:
        _validate_frontier(outcome, program, machine_spec, root)
    outcome.seconds = time.perf_counter() - t0
    if log is not None:
        log.write(
            make_event(
                "run_end",
                run_id=log.run_id,
                completed=len(work),
                total=len(work),
                seconds=round(outcome.seconds, 9),
            )
        )
        outcome.run_dir = log.run_dir
    metrics.gauge(
        "tune.best_score",
        outcome.best.score if (candidates or named) else 0.0,
    )
    return outcome


def _validate_frontier(
    outcome: TuneResult,
    program: Program,
    machine_spec: MachineSpec,
    cache_root: Optional[Path],
) -> None:
    """Measure the static frontier with the real harness (codegen+cache).

    Validation runs at the first target size only (measurement cost is
    per-size; the static ranking already covered the rest).  Agreement
    means: for every validated pair, a strictly better static score
    never measures strictly worse.
    """
    request = outcome.request
    top = outcome.candidates[: request.top_k]
    primary = outcome.sizes[0]
    for cand in top:
        with span("tune-validate", pipeline=cand.label):
            result = run(
                RunRequest(
                    program=program,
                    pipeline=cand.spec,
                    params=_program_params(program, primary),
                    machine=machine_spec,
                    steps=outcome.steps,
                    name=outcome.program,
                    engine=request.engine,
                    cache=TraceCache(cache_root) if cache_root else None,
                )
            ).results[0]
        stats = result.stats
        cand.measured = {
            "l1": stats.l1_misses,
            "l2": stats.l2_misses,
            "misses": stats.l1_misses + stats.l2_misses,
            "accesses": stats.accesses,
            "seconds": round(result.seconds, 3),
        }
        metrics.inc("tune.validated")
    outcome.validated = top
    if len(top) >= 2:
        agree = True
        for i, a in enumerate(top):
            for b in top[i + 1:]:
                if a.score < b.score and a.measured["misses"] > b.measured["misses"]:
                    agree = False
        outcome.rank_agreement = agree


def check_baseline(
    baseline: Mapping[str, object],
    budget_seconds: float = 30.0,
    cache: Union[None, bool, str, Path] = True,
    rtol: float = 1e-6,
) -> list[str]:
    """The CI regression gate over a committed ``BENCH_tune.json``.

    For every program: (1) the committed best must not predict more
    misses than any committed named level; (2) every pipeline whose
    committed ``analysis_seconds`` fits ``budget_seconds`` is
    re-analyzed under the current code, and the recomputed best must
    neither regress against its committed score nor fall behind any
    recomputed named level.  Expensive pipelines (e.g. sp's fused
    levels, minutes of symbolic analysis) stay frozen at their
    committed values — re-tune and re-commit the artifact to move them.

    Returns failure messages (empty = gate passes).
    """
    failures: list[str] = []
    programs = baseline.get("programs", {})
    root = _cache_root(cache)
    tcache = TuneCache(root) if root is not None else None
    for prog_name, entry in sorted(programs.items()):
        best = entry["best"]
        named = entry["named"]
        sizes = entry["sizes"]
        steps = int(entry["steps"])
        l1, l2 = int(entry["l1_elems"]), int(entry["l2_elems"])
        objective = entry.get("objective", "misses")
        threads = int(entry.get("threads") or 4)
        schedule = entry.get("schedule") or "static"
        floor = min(c["score"] for c in named.values())
        if best["score"] > floor * (1 + rtol):
            failures.append(
                f"{prog_name}: committed best ({best['signature']}, "
                f"{best['score']:.0f}) predicts more misses than the best "
                f"named level ({floor:.0f})"
            )
        target = entry.get("target", prog_name)
        req = TuneRequest(program=target, sizes=sizes, steps=steps)
        try:
            _, program, _, _, _ = _resolve_target(req)
        except (KeyError, ReproError) as exc:
            failures.append(f"{prog_name}: cannot rebuild target: {exc}")
            continue

        def recompute(label: str, record: Mapping[str, object], spec) -> None:
            key = (
                tcache.key(
                    str(program), record["signature"], steps, sizes, l1, l2,
                    objective, threads, schedule,
                )
                if tcache is not None
                else None
            )
            cached = tcache.load(key) if tcache is not None else None
            if cached is not None:
                score = float(cached["score"])
            else:
                score, per_size, text_hash, secs = static_score(
                    program, spec, steps, sizes, l1, l2,
                    objective, threads, schedule,
                )
                if tcache is not None:
                    tcache.store(key, {
                        "label": label, "kind": "check",
                        "signature": record["signature"], "score": score,
                        "per_size": per_size, "text_hash": text_hash,
                        "analysis_seconds": round(secs, 3),
                    })
            if score > float(record["score"]) * (1 + rtol):
                failures.append(
                    f"{prog_name}/{label}: predicted misses regressed "
                    f"{record['score']:.0f} -> {score:.0f}"
                )
            recomputed[label] = score

        recomputed: dict[str, float] = {}
        if float(best["analysis_seconds"]) <= budget_seconds:
            recompute("best", best, parse_signature(best["signature"]))
        for level, record in sorted(named.items()):
            if float(record["analysis_seconds"]) <= budget_seconds:
                recompute(level, record, PIPELINES[level])
        if "best" in recomputed:
            for level, score in recomputed.items():
                if level != "best" and recomputed["best"] > score * (1 + rtol):
                    failures.append(
                        f"{prog_name}: recomputed best "
                        f"({recomputed['best']:.0f}) predicts more misses "
                        f"than named level {level} ({score:.0f})"
                    )
    return failures
