"""Legal pipeline candidates: the autotuner's search space.

A *candidate* is a :class:`~repro.core.pm.PipelineSpec` shaped like the
paper's own levels — ``inline`` first (procedure calls must be resolved
before any analysis), an optional subset of the §4.1 enabler passes, a
``simplify`` cleanup, an optional reuse-based ``fusion`` stage at a
chosen ``max_levels``, and an optional *terminal* ``regroup``.  The
shape is not arbitrary: it is exactly the family the pass metadata
permits —

* the enablers run in the metadata-derived canonical order (passes that
  invalidate every analysis before passes that preserve the
  identity-keyed object analyses), so the analysis manager's cache
  survives as long as possible;
* ``regroup`` is analysis-only (``certify=False``: it plans a data
  layout without touching the program), so it is only legal as the
  final step — nothing may transform the program after the layout is
  planned;
* every other step is a certified pass, so any candidate compiles
  under full PR 2 legality verification (the hypothesis suite in
  ``tests/properties/test_tune_props.py`` pins this).

Candidates carry a stable *signature* (``inline+distribute+simplify+
fusion:2+simplify``) that doubles as their cache identity and their
row label in tuner tables; :func:`parse_signature` inverts it.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Sequence

from ..core.pm.passes import ALL_KINDS, PASSES
from ..core.pm.pipelines import PassStep, PipelineSpec
from ..lang import TransformError

#: the §4.1 enabler passes a candidate may include between ``inline``
#: and ``simplify`` (any subset, in canonical order)
ENABLERS = ("unroll", "split_arrays", "distribute", "constprop")

#: fusion ``max_levels`` values the default grid explores; 0 = no fusion
FUSION_LEVELS = (0, 1, 2, 4, 8)


def canonical_enabler_order(names: Iterable[str]) -> tuple[str, ...]:
    """Order enabler passes by their registry metadata.

    Subscript-rewriting passes (``invalidates == ALL_KINDS``) go first,
    preserving passes after, each group in pass-registry declaration
    order — so the object-keyed analyses computed after the last
    invalidating pass stay cached through the rest of the pipeline.
    """
    registry_order = list(PASSES)
    names = tuple(names)
    for name in names:
        if name not in PASSES:
            raise TransformError(
                f"unknown enabler {name!r}; candidates may use {ENABLERS}"
            )

    def key(name: str) -> tuple[int, int]:
        p = PASSES[name]
        invalidates_all = (
            p.invalidates is not None and frozenset(p.invalidates) == ALL_KINDS
        )
        return (0 if invalidates_all else 1, registry_order.index(name))

    return tuple(sorted(names, key=key))


def make_candidate(
    enablers: Sequence[str] = (),
    fusion: int = 0,
    regroup: bool = False,
) -> PipelineSpec:
    """Build one candidate spec from its three degrees of freedom."""
    for name in enablers:
        if name not in ENABLERS:
            raise TransformError(
                f"unknown enabler {name!r}; candidates may use {ENABLERS}"
            )
    if fusion < 0:
        raise TransformError(f"fusion level must be >= 0, got {fusion}")
    steps: list[PassStep] = [PassStep("inline")]
    steps += [PassStep(name) for name in canonical_enabler_order(enablers)]
    steps.append(PassStep("simplify"))
    if fusion:
        steps.append(PassStep("fusion", (("max_levels", int(fusion)),)))
        steps.append(PassStep("simplify"))
    if regroup:
        steps.append(PassStep("regroup"))
    spec = PipelineSpec("", "autotuner candidate", tuple(steps))
    signature = spec_signature(spec)
    return PipelineSpec(f"tune:{signature}", "autotuner candidate", tuple(steps))


def spec_signature(spec: PipelineSpec) -> str:
    """The stable textual identity of any pipeline's pass sequence.

    One token per step — the pass name, with non-default options folded
    in as ``name:v1`` (values in sorted-key order) — joined by ``+``.
    Works for named levels too (``fusion`` renders as
    ``inline+unroll+...+fusion:8+simplify``), which is what lets the
    tuner dedup a candidate against a paper level it reproduces.
    """
    tokens = []
    for step in spec.steps:
        if step.options:
            values = ":".join(str(v) for _, v in sorted(step.options))
            tokens.append(f"{step.name}:{values}")
        else:
            tokens.append(step.name)
    return "+".join(tokens)


def parse_signature(signature: str) -> PipelineSpec:
    """Invert :func:`spec_signature` for candidate-shaped signatures.

    Only ``fusion:K`` carries an option in the candidate family; any
    other optioned token is rejected (named levels are reconstructed
    from the pipeline registry, not from signatures).
    """
    steps: list[PassStep] = []
    for token in signature.split("+"):
        name, _, value = token.partition(":")
        if name not in PASSES:
            raise TransformError(
                f"signature {signature!r} names unknown pass {name!r}"
            )
        if value:
            if name != "fusion":
                raise TransformError(
                    f"signature {signature!r}: only fusion takes an option"
                )
            steps.append(PassStep("fusion", (("max_levels", int(value)),)))
        else:
            steps.append(PassStep(name))
    if not steps:
        raise TransformError("empty candidate signature")
    return PipelineSpec(
        f"tune:{signature}", "autotuner candidate", tuple(steps)
    ).validate()


def candidate_fields(
    spec: PipelineSpec,
) -> tuple[tuple[str, ...], int, bool]:
    """Decompose a candidate back into (enablers, fusion level, regroup).

    Raises :class:`~repro.lang.TransformError` if ``spec`` is not
    candidate-shaped — the mutation operators only walk inside the
    legal family.
    """
    names = [s.name for s in spec.steps]
    if not names or names[0] != "inline":
        raise TransformError(f"candidate must start with inline: {names}")
    regroup = names[-1] == "regroup"
    if regroup:
        names = names[:-1]
    fusion = 0
    for step in spec.steps:
        if step.name == "fusion":
            fusion = int(dict(step.options).get("max_levels", 8))
    core = [n for n in names[1:] if n not in ("simplify", "fusion")]
    if any(n not in ENABLERS for n in core):
        raise TransformError(f"not a candidate-shaped pipeline: {names}")
    return tuple(canonical_enabler_order(core)), fusion, regroup


def enumerate_candidates(
    enablers: Sequence[str] = ENABLERS,
    fusion_levels: Sequence[int] = FUSION_LEVELS,
    regroup: bool = True,
    max_candidates: Optional[int] = None,
) -> list[PipelineSpec]:
    """The full candidate grid: every enabler subset x fusion level
    (x regroup toggle, unless ``regroup=False``).

    The grid is ordered cheapest-first (fewer passes, lower fusion
    level), so ``max_candidates`` truncation keeps the fast region —
    and so the tuner's dedup sees the small pipelines before the
    expensive fused ones.
    """
    regroup_choices = (False, True) if regroup else (False,)
    out: list[PipelineSpec] = []
    for r in range(len(enablers) + 1):
        for combo in itertools.combinations(enablers, r):
            for level in fusion_levels:
                for rg in regroup_choices:
                    out.append(make_candidate(combo, level, rg))
                    if max_candidates is not None and len(out) >= max_candidates:
                        return out
    return out


def neighbors(spec: PipelineSpec) -> list[PipelineSpec]:
    """Every single-move mutation of a candidate, all still legal.

    Moves: toggle one enabler, step the fusion level to an adjacent
    grid value, toggle the terminal regroup.  The closure of
    :func:`make_candidate` under this operator is exactly
    :func:`enumerate_candidates`'s grid — mutation search and
    exhaustive search explore the same space.
    """
    enablers, fusion, regroup = candidate_fields(spec)
    out: list[PipelineSpec] = []
    for name in ENABLERS:
        toggled = tuple(e for e in enablers if e != name) \
            if name in enablers else enablers + (name,)
        out.append(make_candidate(toggled, fusion, regroup))
    idx = FUSION_LEVELS.index(fusion) if fusion in FUSION_LEVELS else None
    if idx is not None:
        for j in (idx - 1, idx + 1):
            if 0 <= j < len(FUSION_LEVELS):
                out.append(make_candidate(enablers, FUSION_LEVELS[j], regroup))
    out.append(make_candidate(enablers, fusion, not regroup))
    seen = set()
    unique = []
    for cand in out:
        if cand.name not in seen and cand.name != spec.name:
            seen.add(cand.name)
            unique.append(cand)
    return unique
