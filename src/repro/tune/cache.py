"""Content-addressed store for tuner candidate evaluations.

The expensive half of a tuning run is the symbolic reuse analysis of
each distinct compiled candidate (seconds to minutes for the large
programs), while evaluating a profile at a size is microseconds — so
the unit of caching is *one candidate's full static evaluation*: its
objective score, the per-size miss predictions, the compiled-text hash
and the analysis wall-clock.  Entries live as ``tune-<key>.json``
beside the harness's ``trace-``/``result-`` files (same default
``.cache/`` root, same atomic-publish discipline), and the key hashes
everything the value depends on — source program, candidate signature,
steps, target sizes, cache capacities, objective, thread count and
schedule — so a resumed or re-parameterized search never replays a
stale entry.  ``TraceCache.clear()`` / ``repro cache --clear`` drop
tune entries together with traces and results.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Mapping, Optional, Sequence

from ..harness.cache import default_cache_dir
from ..obs import metrics


class TuneCache:
    """Content-addressed candidate-evaluation store (``tune-*.json``)."""

    def __init__(self, root: Optional[Path | str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def key(
        self,
        source_text: str,
        signature: str,
        steps: int,
        sizes: Sequence[Mapping[str, int]],
        l1_elems: int,
        l2_elems: int,
        objective: str,
        threads: int,
        schedule: str,
    ) -> str:
        """Key of one candidate evaluation under one objective."""
        blob = json.dumps(
            {
                "source": source_text,
                "signature": signature,
                "steps": int(steps),
                "sizes": [
                    {k: int(v) for k, v in sorted(size.items())}
                    for size in sizes
                ],
                "l1": int(l1_elems),
                "l2": int(l2_elems),
                "objective": objective,
                "threads": int(threads),
                "schedule": schedule,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:32]

    def load(self, key: str) -> Optional[dict]:
        path = self.root / f"tune-{key}.json"
        if not path.exists():
            metrics.inc("tune.cache.misses")
            return None
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            metrics.inc("tune.cache.misses")
            return None  # corrupt entry: treat as a miss, it will be rewritten
        metrics.inc("tune.cache.hits")
        return entry

    def store(self, key: str, entry: Mapping[str, object]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"tune-{key}.json"
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(dict(entry), sort_keys=True))
        tmp.replace(path)
        metrics.inc("tune.cache.stores")
