"""Affine linear forms over symbolic names.

The whole compiler reasons about loop bounds and subscripts as affine
expressions ``c0 + sum(ci * vi)`` where each ``vi`` is a loop index or a
symbolic program parameter (such as the mesh size ``N``).  This module
provides the canonical representation, arithmetic, and a conservative
symbolic comparison used by dependence testing and alignment computation.

Comparison semantics
--------------------
``Affine.compare`` answers "is self - other always negative / zero /
positive" under the assumption that every symbolic parameter is at least
``param_min`` (loop sizes are large).  When the sign cannot be determined
the comparison returns ``None`` and callers must fall back to a
conservative decision (e.g. "assume dependence").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Mapping, Optional, Union

from .errors import NotAffineError

Number = Union[int, float, Fraction]

#: Default assumed lower bound for every symbolic parameter.  The paper's
#: inputs are all >= 14 in each dimension; 8 keeps boundary peeling legal
#: while remaining conservative.
DEFAULT_PARAM_MIN = 8


@dataclass(frozen=True)
class Assumptions:
    """Per-variable lower bounds used by symbolic comparison.

    Program parameters default to ``default`` (problem sizes are large);
    enclosing loop indices get their own minimum (often 1 or 2) so that
    inner-level fusion can compare bounds involving outer indices without
    over-claiming.  A variable mapped to ``None`` is unbounded below and
    defeats any comparison that needs its sign.
    """

    default: int = DEFAULT_PARAM_MIN
    mins: tuple[tuple[str, Optional[int]], ...] = ()

    @staticmethod
    def of(value: Union[int, "Assumptions"]) -> "Assumptions":
        if isinstance(value, Assumptions):
            return value
        return Assumptions(default=value)

    def min_of(self, name: str) -> Optional[int]:
        for n, m in self.mins:
            if n == name:
                return m
        return self.default

    def with_var(self, name: str, minimum: Optional[int]) -> "Assumptions":
        rest = tuple((n, m) for n, m in self.mins if n != name)
        return Assumptions(self.default, rest + ((name, minimum),))

    @property
    def names(self) -> frozenset[str]:
        return frozenset(n for n, _ in self.mins)


@dataclass(frozen=True)
class Affine:
    """An affine form ``const + sum(coeffs[name] * name)``.

    Instances are immutable and hashable; zero coefficients are never
    stored.  Coefficients and the constant are exact (int / Fraction).
    """

    const: Fraction = Fraction(0)
    coeffs: tuple[tuple[str, Fraction], ...] = field(default=())

    # -- construction -----------------------------------------------------

    @staticmethod
    def constant(value: Number) -> "Affine":
        return Affine(_frac(value), ())

    @staticmethod
    def var(name: str, coeff: Number = 1) -> "Affine":
        c = _frac(coeff)
        if c == 0:
            return Affine()
        return Affine(Fraction(0), ((name, c),))

    @staticmethod
    def from_terms(const: Number, terms: Mapping[str, Number]) -> "Affine":
        clean = tuple(
            sorted((n, _frac(c)) for n, c in terms.items() if _frac(c) != 0)
        )
        return Affine(_frac(const), clean)

    # -- inspection -------------------------------------------------------

    @property
    def terms(self) -> dict[str, Fraction]:
        return dict(self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def constant_value(self) -> Fraction:
        if self.coeffs:
            raise NotAffineError(f"{self} is not a constant")
        return self.const

    def int_value(self) -> int:
        v = self.constant_value()
        if v.denominator != 1:
            raise NotAffineError(f"{self} is not an integer")
        return int(v)

    def variables(self) -> frozenset[str]:
        return frozenset(n for n, _ in self.coeffs)

    def coeff(self, name: str) -> Fraction:
        for n, c in self.coeffs:
            if n == name:
                return c
        return Fraction(0)

    def depends_on(self, names: Iterable[str]) -> bool:
        wanted = set(names)
        return any(n in wanted for n, _ in self.coeffs)

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other: Union["Affine", Number]) -> "Affine":
        other = _coerce(other)
        terms = self.terms
        for n, c in other.coeffs:
            terms[n] = terms.get(n, Fraction(0)) + c
        return Affine.from_terms(self.const + other.const, terms)

    __radd__ = __add__

    def __neg__(self) -> "Affine":
        return Affine(-self.const, tuple((n, -c) for n, c in self.coeffs))

    def __sub__(self, other: Union["Affine", Number]) -> "Affine":
        return self + (-_coerce(other))

    def __rsub__(self, other: Number) -> "Affine":
        return _coerce(other) - self

    def __mul__(self, scalar: Number) -> "Affine":
        s = _frac(scalar)
        if s == 0:
            return Affine()
        return Affine(
            self.const * s, tuple((n, c * s) for n, c in self.coeffs)
        )

    __rmul__ = __mul__

    def substitute(self, bindings: Mapping[str, Union["Affine", Number]]) -> "Affine":
        """Replace variables with affine forms or numbers."""
        out = Affine.constant(self.const)
        for n, c in self.coeffs:
            if n in bindings:
                out = out + _coerce(bindings[n]) * c
            else:
                out = out + Affine.var(n, c)
        return out

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        """Fully evaluate; every variable must be bound in ``env``."""
        total = self.const
        for n, c in self.coeffs:
            if n not in env:
                raise NotAffineError(f"unbound variable {n!r} in {self}")
            total += c * _frac(env[n])
        return total

    # -- symbolic comparison ----------------------------------------------

    def sign(
        self, assume: Union[int, "Assumptions"] = DEFAULT_PARAM_MIN
    ) -> Optional[int]:
        """Sign of this form for all assignments respecting ``assume``.

        Returns -1, 0, +1, or ``None`` when indeterminate.  Bounds are
        one-sided (variables are assumed *unbounded above*), so a form with
        any positive coefficient can only be ``+1`` or ``None``, and
        symmetrically for negative coefficients.
        """
        if not self.coeffs:
            c = self.const
            return 0 if c == 0 else (1 if c > 0 else -1)
        assume = Assumptions.of(assume)
        coefs = [(n, c) for n, c in self.coeffs]
        if all(c > 0 for _, c in coefs):
            low = self.const
            for n, c in coefs:
                m = assume.min_of(n)
                if m is None:
                    return None
                low += c * m
            if low > 0:
                return 1
            return None
        if all(c < 0 for _, c in coefs):
            high = self.const
            for n, c in coefs:
                m = assume.min_of(n)
                if m is None:
                    return None
                high += c * m
            if high < 0:
                return -1
            return None
        return None

    def compare(
        self,
        other: Union["Affine", Number],
        assume: Union[int, "Assumptions"] = DEFAULT_PARAM_MIN,
    ) -> Optional[int]:
        """Compare two affine forms; -1 / 0 / +1 / None as for :meth:`sign`."""
        return (self - _coerce(other)).sign(assume)

    def lower_bound(
        self, assume: Union[int, "Assumptions"] = DEFAULT_PARAM_MIN
    ) -> Optional[Fraction]:
        """Greatest provable lower bound under ``assume`` (None if unbounded)."""
        assume = Assumptions.of(assume)
        total = self.const
        for n, c in self.coeffs:
            if c < 0:
                return None  # no upper bounds are tracked
            m = assume.min_of(n)
            if m is None:
                return None
            total += c * m
        return total

    def is_nonnegative(
        self, assume: Union[int, "Assumptions"] = DEFAULT_PARAM_MIN
    ) -> Optional[bool]:
        s = (self + 1).sign(assume)  # self >= 0  <=>  self + 1 > 0 for ints
        if s == 1:
            return True
        s2 = self.sign(assume)
        if s2 == -1:
            return False
        return None

    # -- display ----------------------------------------------------------

    def __str__(self) -> str:
        parts: list[str] = []
        for n, c in self.coeffs:
            if c == 1:
                parts.append(n)
            elif c == -1:
                parts.append(f"-{n}")
            else:
                parts.append(f"{_fmt(c)}*{n}")
        if self.const != 0 or not parts:
            parts.append(_fmt(self.const))
        out = parts[0]
        for p in parts[1:]:
            out += f" - {p[1:]}" if p.startswith("-") else f" + {p}"
        return out

    __repr__ = __str__


def _frac(value: Number) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if not value.is_integer():
            raise NotAffineError(f"non-integral affine coefficient {value}")
        return Fraction(int(value))
    raise NotAffineError(f"cannot coerce {value!r} into an affine coefficient")


def _coerce(value: Union[Affine, Number]) -> Affine:
    if isinstance(value, Affine):
        return value
    return Affine.constant(value)


def _fmt(c: Fraction) -> str:
    return str(int(c)) if c.denominator == 1 else str(c)


#: Shared zero / one singletons.
ZERO = Affine()
ONE = Affine.constant(1)
