"""Convenience builders for constructing programs in Python.

The DSL parser is the primary front end; the builder exists so tests,
benchmark-program generators, and examples can assemble ASTs
programmatically without string templates::

    b = ProgramBuilder("adi", params=["N"])
    A = b.array("A", "N", "N")
    i, j = idx("i"), idx("j")
    b.add(loop("i", 2, param("N"),
               loop("j", 1, param("N"),
                    assign(A[j, i], call("f", A[j, i - 1], A[j, i])))))
    prog = b.build()
"""

from __future__ import annotations

from typing import Sequence, Union

from .expr import (
    ArrayRef,
    Call,
    Const,
    Expr,
    ExprLike,
    IndexVar,
    Param,
    ScalarRef,
    UnaryOp,
    wrap,
)
from .program import ArrayDecl, Procedure, Program
from .stmt import Assign, Guard, Interval, Loop, Stmt
from .affine import Affine
from .errors import ValidationError


class ArrayHandle:
    """A declared array that can be subscripted with ``handle[e1, e2]``."""

    def __init__(self, name: str, ndim: int) -> None:
        self.name = name
        self.ndim = ndim

    def __getitem__(self, indices: Union[ExprLike, tuple[ExprLike, ...]]) -> ArrayRef:
        if not isinstance(indices, tuple):
            indices = (indices,)
        if len(indices) != self.ndim:
            raise ValidationError(
                f"array {self.name!r} has {self.ndim} dims, got {len(indices)} subscripts"
            )
        return ArrayRef(self.name, tuple(wrap(e) for e in indices))

    def ref(self, *indices: ExprLike) -> ArrayRef:
        return self[tuple(indices)]


def idx(name: str) -> IndexVar:
    return IndexVar(name)


def param(name: str) -> Param:
    return Param(name)


def scalar(name: str) -> ScalarRef:
    return ScalarRef(name)


def const(value: Union[int, float]) -> Const:
    return Const(value)


def call(func: str, *args: ExprLike) -> Call:
    return Call(func, tuple(wrap(a) for a in args))


def assign(target, expr: ExprLike) -> Assign:
    return Assign(target, wrap(expr))


def loop(
    index: str,
    lower: ExprLike,
    upper: ExprLike,
    *body: Union[Stmt, Sequence[Stmt]],
    label: str | None = None,
) -> Loop:
    stmts: list[Stmt] = []
    for item in body:
        if isinstance(item, Stmt):
            stmts.append(item)
        else:
            stmts.extend(item)
    return Loop(index, wrap(lower), wrap(upper), tuple(stmts), label=label)


def when(
    index: str,
    intervals: Sequence[Union[tuple[ExprLike, ExprLike], ExprLike]],
    body: Union[Stmt, Sequence[Stmt]],
    else_body: Union[Stmt, Sequence[Stmt]] = (),
) -> Guard:
    ivs: list[Interval] = []
    for item in intervals:
        if isinstance(item, tuple):
            lo, hi = item
            ivs.append(Interval(wrap(lo).affine(), wrap(hi).affine()))
        else:
            ivs.append(Interval.point(wrap(item).affine()))
    if isinstance(body, Stmt):
        body = (body,)
    if isinstance(else_body, Stmt):
        else_body = (else_body,)
    return Guard(index, tuple(ivs), tuple(body), tuple(else_body))


def interval(lower: ExprLike, upper: ExprLike | None = None) -> Interval:
    lo = wrap(lower).affine()
    return Interval(lo, wrap(upper).affine() if upper is not None else lo)


def affine_expr(form: Affine, params: frozenset[str] = frozenset()) -> Expr:
    """Convert an affine form back into an expression tree.

    Names in ``params`` become :class:`Param` nodes; everything else is an
    :class:`IndexVar`.
    """
    expr: Expr | None = None
    for name, coeff in form.coeffs:
        term: Expr = Param(name) if name in params else IndexVar(name)
        negative = coeff < 0
        magnitude = -coeff if negative else coeff
        if magnitude != 1:
            if magnitude.denominator == 1:
                term = Const(int(magnitude)) * term
            else:
                term = (Const(magnitude.numerator) / Const(magnitude.denominator)) * term
        if expr is None:
            expr = UnaryOp("-", term) if negative else term
        else:
            expr = expr - term if negative else expr + term
    if form.const != 0 or expr is None:
        c = form.const
        negative = c < 0
        mag = -c if negative else c
        cexpr: Expr = (
            Const(int(mag)) if mag.denominator == 1 else Const(mag.numerator) / Const(mag.denominator)
        )
        if expr is None:
            expr = UnaryOp("-", cexpr) if negative else cexpr
        elif negative:
            expr = expr - cexpr
        else:
            expr = expr + cexpr
    return expr


class ProgramBuilder:
    """Incremental builder for whole programs."""

    def __init__(self, name: str, params: Sequence[str] = ()) -> None:
        self.name = name
        self.params: list[str] = list(params)
        self.arrays: list[ArrayDecl] = []
        self.scalars: list[str] = []
        self.procedures: list[Procedure] = []
        self.body: list[Stmt] = []

    def param(self, name: str) -> Param:
        if name not in self.params:
            self.params.append(name)
        return Param(name)

    def array(self, name: str, *extents: ExprLike, elem_size: int = 8) -> ArrayHandle:
        decl = ArrayDecl(name, tuple(wrap(e) for e in extents), elem_size=elem_size)
        self.arrays.append(decl)
        return ArrayHandle(name, decl.ndim)

    def scalar(self, name: str) -> ScalarRef:
        if name not in self.scalars:
            self.scalars.append(name)
        return ScalarRef(name)

    def proc(self, name: str, formals: Sequence[str], body: Sequence[Stmt]) -> None:
        self.procedures.append(Procedure(name, tuple(formals), tuple(body)))

    def add(self, *stmts: Stmt) -> "ProgramBuilder":
        self.body.extend(stmts)
        return self

    def build(self) -> Program:
        return Program(
            name=self.name,
            params=tuple(self.params),
            arrays=tuple(self.arrays),
            scalars=tuple(self.scalars),
            procedures=tuple(self.procedures),
            body=tuple(self.body),
        )
