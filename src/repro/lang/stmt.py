"""Statement AST: assignments, loops, guards, and procedure calls.

Statements are immutable; transformations build new trees.  Loop bodies
are tuples of statements.  ``Guard`` is the *structured* conditional that
fusion code generation emits (membership of the loop index in a union of
affine intervals) — keeping it structured is what lets the interpreter,
the trace generator, and inner-level fusion all consume fused code without
general control-flow analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Sequence, Union

from .affine import Affine
from .errors import ValidationError
from .expr import ArrayRef, Expr, ScalarRef, wrap


class Stmt:
    """Base class for all statements."""

    __slots__ = ()

    def walk(self) -> Iterator["Stmt"]:
        """Pre-order traversal of this statement and all nested statements."""
        yield self
        for child in self.child_stmts():
            yield from child.walk()

    def child_stmts(self) -> tuple["Stmt", ...]:
        return ()


def as_body(stmts: Union["Stmt", Sequence["Stmt"]]) -> tuple[Stmt, ...]:
    """Normalize a statement or sequence of statements into a body tuple."""
    if isinstance(stmts, Stmt):
        return (stmts,)
    body = tuple(stmts)
    for s in body:
        if not isinstance(s, Stmt):
            raise ValidationError(f"{s!r} is not a statement")
    return body


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = expr`` where target is an array element or a scalar."""

    target: Union[ArrayRef, ScalarRef]
    expr: Expr

    def __post_init__(self) -> None:
        object.__setattr__(self, "expr", wrap(self.expr))
        if not isinstance(self.target, (ArrayRef, ScalarRef)):
            raise ValidationError(
                f"assignment target must be array/scalar ref, got {self.target!r}"
            )

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"


@dataclass(frozen=True)
class Loop(Stmt):
    """``for index = lower, upper { body }`` with inclusive Fortran bounds.

    ``label`` is cosmetic bookkeeping (which source loop this came from,
    through distribution and fusion); it does not affect equality.
    """

    index: str
    lower: Expr
    upper: Expr
    body: tuple[Stmt, ...]
    label: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "lower", wrap(self.lower))
        object.__setattr__(self, "upper", wrap(self.upper))
        object.__setattr__(self, "body", as_body(self.body))

    def child_stmts(self) -> tuple[Stmt, ...]:
        return self.body

    def bounds_affine(self) -> tuple[Affine, Affine]:
        return self.lower.affine(), self.upper.affine()

    def with_body(self, body: Sequence[Stmt]) -> "Loop":
        return replace(self, body=as_body(body))

    def __str__(self) -> str:
        return f"for {self.index} = {self.lower}, {self.upper} ({len(self.body)} stmts)"


@dataclass(frozen=True)
class Interval:
    """An inclusive interval ``[lower, upper]`` with affine endpoints."""

    lower: Affine
    upper: Affine

    @staticmethod
    def point(value: Affine) -> "Interval":
        return Interval(value, value)

    def __str__(self) -> str:
        if self.lower == self.upper:
            return f"{self.lower}"
        return f"{self.lower}:{self.upper}"


@dataclass(frozen=True)
class Guard(Stmt):
    """Structured conditional: run ``body`` when ``index`` lies in the union
    of ``intervals``, otherwise run ``else_body``.

    Emitted by fused-loop code generation (e.g. the ``if (i == 2)`` in the
    paper's Figure 4(a)); the interval endpoints are affine in program
    parameters so membership is decidable per iteration.
    """

    index: str
    intervals: tuple[Interval, ...]
    body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", as_body(self.body))
        object.__setattr__(self, "else_body", as_body(self.else_body))
        if not self.intervals:
            raise ValidationError("guard needs at least one interval")

    def child_stmts(self) -> tuple[Stmt, ...]:
        return self.body + self.else_body

    def __str__(self) -> str:
        ranges = ", ".join(str(iv) for iv in self.intervals)
        return f"when {self.index} in [{ranges}]"


@dataclass(frozen=True)
class CallStmt(Stmt):
    """A call to a user procedure (inlining substrate; no return value)."""

    proc: str
    args: tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(wrap(a) for a in self.args))

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"call {self.proc}({inner})"


# -- traversal helpers ------------------------------------------------------


def map_body(
    stmts: Sequence[Stmt], fn
) -> tuple[Stmt, ...]:
    """Apply ``fn`` to each statement, flattening ``None`` (drop) and lists."""
    out: list[Stmt] = []
    for s in stmts:
        res = fn(s)
        if res is None:
            continue
        if isinstance(res, Stmt):
            out.append(res)
        else:
            out.extend(res)
    return tuple(out)


def loops_in(stmts: Sequence[Stmt]) -> list[Loop]:
    """All loops nested anywhere inside ``stmts`` (pre-order)."""
    found: list[Loop] = []
    for s in stmts:
        for node in s.walk():
            if isinstance(node, Loop):
                found.append(node)
    return found


def assignments_in(stmts: Sequence[Stmt]) -> list[Assign]:
    found: list[Assign] = []
    for s in stmts:
        for node in s.walk():
            if isinstance(node, Assign):
                found.append(node)
    return found


def loop_nest_depth(stmt: Stmt) -> int:
    """Maximum loop nesting depth inside ``stmt`` (a bare loop has depth 1)."""
    if isinstance(stmt, Loop):
        inner = max((loop_nest_depth(s) for s in stmt.body), default=0)
        return 1 + inner
    depth = 0
    for child in stmt.child_stmts():
        depth = max(depth, loop_nest_depth(child))
    return depth
