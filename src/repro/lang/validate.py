"""Structural validation of programs.

``validate(program)`` checks the invariants every later pass assumes:

* every array reference names a declared array with the right arity;
* every identifier in every expression is a parameter, a declared scalar,
  or a loop index currently in scope;
* loop bounds and subscripts are affine in parameters and in-scope indices;
* loop indices do not shadow parameters, arrays, or outer indices;
* guard variables are loop indices in scope.

All problems are collected — validation does not stop at the first error —
and raised together as a :class:`ValidationError` whose ``issues`` tuple
carries one :class:`ValidationIssue` (path-like location + message) per
problem.  ``validation_issues`` returns the same list without raising,
which is what the :mod:`repro.verify` lint framework builds on.  Both are
cheap enough to run after every transformation (the integration tests do
exactly that).
"""

from __future__ import annotations

from typing import Sequence

from .errors import NotAffineError, ValidationError, ValidationIssue
from .expr import ArrayRef, Expr, IndexVar, Param, ScalarRef
from .program import Program
from .stmt import Assign, CallStmt, Guard, Loop, Stmt


class _Checker:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.params = set(program.params)
        self.scalars = set(program.scalars)
        self.arrays = {a.name: a for a in program.arrays}
        self.index_scope: list[str] = []
        self.issues: list[ValidationIssue] = []

    def fail(self, where: str, message: str) -> None:
        self.issues.append(ValidationIssue(where, message))

    # -- expressions ----------------------------------------------------------

    def check_expr(self, expr: Expr, where: str) -> None:
        for node in expr.walk():
            if isinstance(node, Param):
                if node.name not in self.params:
                    self.fail(where, f"undeclared parameter {node.name!r}")
            elif isinstance(node, IndexVar):
                if node.name not in self.index_scope:
                    self.fail(where, f"loop index {node.name!r} used out of scope")
            elif isinstance(node, ScalarRef):
                if node.name not in self.scalars:
                    self.fail(where, f"undeclared scalar {node.name!r}")
            elif isinstance(node, ArrayRef):
                decl = self.arrays.get(node.array)
                if decl is None:
                    self.fail(where, f"undeclared array {node.array!r}")
                elif len(node.indices) != decl.ndim:
                    self.fail(
                        where,
                        f"array {node.array!r} has {decl.ndim} dims, "
                        f"subscripted with {len(node.indices)}",
                    )
                for k, sub in enumerate(node.indices):
                    try:
                        sub.affine()
                    except NotAffineError:
                        self.fail(
                            where,
                            f"subscript {k} of {node.array!r} is not affine: {sub}",
                        )

    def check_bound(self, expr: Expr, where: str) -> None:
        self.check_expr(expr, where)
        try:
            expr.affine()
        except NotAffineError:
            self.fail(where, f"loop bound is not affine: {expr}")

    # -- statements -------------------------------------------------------------

    def check_stmt(self, stmt: Stmt, where: str) -> None:
        if isinstance(stmt, Assign):
            self.check_expr(stmt.target, f"{where} lhs")
            self.check_expr(stmt.expr, f"{where} rhs")
        elif isinstance(stmt, Loop):
            if stmt.index in self.params:
                self.fail(where, f"loop index {stmt.index!r} shadows a parameter")
            if stmt.index in self.arrays:
                self.fail(where, f"loop index {stmt.index!r} shadows an array")
            if stmt.index in self.index_scope:
                self.fail(where, f"loop index {stmt.index!r} shadows an outer loop")
            self.check_bound(stmt.lower, f"{where} lower bound")
            self.check_bound(stmt.upper, f"{where} upper bound")
            self.index_scope.append(stmt.index)
            self.check_body(stmt.body, f"{where}/for {stmt.index}")
            self.index_scope.pop()
        elif isinstance(stmt, Guard):
            if stmt.index not in self.index_scope:
                self.fail(where, f"guard on {stmt.index!r}, not a loop index in scope")
            for iv in stmt.intervals:
                for end in (iv.lower, iv.upper):
                    for name in end.variables():
                        if name not in self.params and name not in self.index_scope:
                            self.fail(
                                where, f"guard interval uses unknown name {name!r}"
                            )
            self.check_body(stmt.body, f"{where}/when {stmt.index}")
            self.check_body(stmt.else_body, f"{where}/when {stmt.index} else")
        elif isinstance(stmt, CallStmt):
            names = {p.name for p in self.program.procedures}
            if stmt.proc not in names:
                self.fail(where, f"call to undeclared procedure {stmt.proc!r}")
            else:
                proc = self.program.procedure(stmt.proc)
                if len(stmt.args) != len(proc.formals):
                    self.fail(
                        where,
                        f"procedure {stmt.proc!r} takes {len(proc.formals)} args, "
                        f"got {len(stmt.args)}",
                    )
            for a in stmt.args:
                self.check_expr(a, f"{where} arg")
        else:
            self.fail(where, f"unknown statement type {type(stmt).__name__}")

    def check_body(self, body: Sequence[Stmt], where: str) -> None:
        for k, stmt in enumerate(body):
            self.check_stmt(stmt, f"{where}[{k}]")

    def run(self) -> list[ValidationIssue]:
        overlap = self.params & set(self.arrays)
        if overlap:
            self.fail("decls", f"names declared as both param and array: {overlap}")
        overlap = self.scalars & set(self.arrays)
        if overlap:
            self.fail("decls", f"names declared as both scalar and array: {overlap}")
        for proc in self.program.procedures:
            self.index_scope.extend(proc.formals)
            self.check_body(proc.body, f"proc {proc.name}")
            del self.index_scope[len(self.index_scope) - len(proc.formals):]
        self.check_body(self.program.body, "body")
        return self.issues


def validation_issues(program: Program) -> list[ValidationIssue]:
    """All structural problems in ``program`` (empty when valid)."""
    return _Checker(program).run()


def validate(program: Program) -> Program:
    """Validate structural invariants; returns the program for chaining.

    Raises :class:`ValidationError` carrying *every* problem found, not
    just the first.
    """
    issues = validation_issues(program)
    if issues:
        raise ValidationError.from_issues(program.name, tuple(issues))
    return program
