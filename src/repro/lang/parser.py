"""Recursive-descent parser for the mini loop language DSL.

The surface syntax is deliberately Fortran-flavoured (1-based inclusive
``for`` bounds) while using braces for blocks::

    program adi
    param N
    real A[N, N], B[N, N], X[N, N]

    for i = 2, N {
      for j = 1, N {
        A[j, i] = f(A[j, i], A[j, i-1], B[j, i])
      }
    }
    A[1, 1] = 0.0
    when i in [2, 4:N] { ... } else { ... }   # structured guard
    proc relax(k) { ... }  /  call relax(3)

Identifiers must be declared (param / real / scalar / loop index / proc
formal) before use so typos fail loudly at parse time.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ParseError
from .expr import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    Expr,
    IndexVar,
    Param,
    ScalarRef,
    UnaryOp,
)
from .program import ArrayDecl, Procedure, Program
from .stmt import Assign, CallStmt, Guard, Interval, Loop, Stmt

_KEYWORDS = {
    "program",
    "param",
    "real",
    "int",
    "scalar",
    "for",
    "when",
    "in",
    "else",
    "proc",
    "call",
}

_SYMBOLS = ("==", "{", "}", "[", "]", "(", ")", ",", "=", "+", "-", "*", "/", ":")


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'number' | 'symbol' | 'eof'
    text: str
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line, col = 1, 1
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            tokens.append(Token("ident", text, line, col))
            col += i - start
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            while i < n and (source[i].isdigit() or source[i] == "."):
                i += 1
            text = source[start:i]
            if text.count(".") > 1:
                raise ParseError(f"malformed number {text!r}", line, col)
            tokens.append(Token("number", text, line, col))
            col += i - start
            continue
        for sym in _SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token("symbol", sym, line, col))
                i += len(sym)
                col += len(sym)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens


class Parser:
    """Single-pass recursive-descent parser producing a :class:`Program`."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        self.params: list[str] = []
        self.arrays: list[ArrayDecl] = []
        self.scalars: list[str] = []
        self.procedures: list[Procedure] = []
        self.index_scope: list[str] = []

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        tok = self.peek()
        return tok.kind in ("symbol", "ident") and tok.text == text

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if not self.check(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.line, tok.column)
        return self.advance()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind != "ident" or tok.text in _KEYWORDS:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.line, tok.column)
        return self.advance()

    # -- grammar ---------------------------------------------------------------

    def parse_program(self) -> Program:
        self.expect("program")
        name = self.expect_ident().text
        body: list[Stmt] = []
        while self.peek().kind != "eof":
            tok = self.peek()
            if self.accept("param"):
                self.params.append(self.expect_ident().text)
                while self.accept(","):
                    self.params.append(self.expect_ident().text)
            elif self.accept("real") or (tok.text == "int" and self.accept("int")):
                self.arrays.append(self.parse_array_decl())
                while self.accept(","):
                    self.arrays.append(self.parse_array_decl())
            elif self.accept("scalar"):
                self.scalars.append(self.expect_ident().text)
                while self.accept(","):
                    self.scalars.append(self.expect_ident().text)
            elif self.accept("proc"):
                self.procedures.append(self.parse_procedure())
            else:
                body.append(self.parse_stmt())
        return Program(
            name=name,
            params=tuple(self.params),
            arrays=tuple(self.arrays),
            scalars=tuple(self.scalars),
            procedures=tuple(self.procedures),
            body=tuple(body),
        )

    def parse_array_decl(self) -> ArrayDecl:
        name = self.expect_ident().text
        self.expect("[")
        extents = [self.parse_expr()]
        while self.accept(","):
            extents.append(self.parse_expr())
        self.expect("]")
        return ArrayDecl(name, tuple(extents))

    def parse_procedure(self) -> Procedure:
        name = self.expect_ident().text
        self.expect("(")
        formals: list[str] = []
        if not self.check(")"):
            formals.append(self.expect_ident().text)
            while self.accept(","):
                formals.append(self.expect_ident().text)
        self.expect(")")
        self.index_scope.extend(formals)
        body = self.parse_block()
        del self.index_scope[len(self.index_scope) - len(formals):]
        return Procedure(name, tuple(formals), body)

    def parse_block(self) -> tuple[Stmt, ...]:
        self.expect("{")
        stmts: list[Stmt] = []
        while not self.check("}"):
            stmts.append(self.parse_stmt())
        self.expect("}")
        return tuple(stmts)

    def parse_stmt(self) -> Stmt:
        if self.accept("for"):
            index = self.expect_ident().text
            self.expect("=")
            lower = self.parse_expr()
            self.expect(",")
            upper = self.parse_expr()
            self.index_scope.append(index)
            body = self.parse_block()
            self.index_scope.pop()
            return Loop(index, lower, upper, body)
        if self.accept("when"):
            tok = self.peek()
            index = self.expect_ident().text
            if index not in self.index_scope:
                raise ParseError(
                    f"guard variable {index!r} is not a loop index in scope",
                    tok.line,
                    tok.column,
                )
            self.expect("in")
            self.expect("[")
            intervals = [self.parse_interval()]
            while self.accept(","):
                intervals.append(self.parse_interval())
            self.expect("]")
            body = self.parse_block()
            else_body: tuple[Stmt, ...] = ()
            if self.accept("else"):
                else_body = self.parse_block()
            return Guard(index, tuple(intervals), body, else_body)
        if self.accept("call"):
            name = self.expect_ident().text
            self.expect("(")
            args: list[Expr] = []
            if not self.check(")"):
                args.append(self.parse_expr())
                while self.accept(","):
                    args.append(self.parse_expr())
            self.expect(")")
            return CallStmt(name, tuple(args))
        # assignment
        target = self.parse_lvalue()
        self.expect("=")
        expr = self.parse_expr()
        return Assign(target, expr)

    def parse_interval(self) -> Interval:
        lo = self.parse_expr().affine()
        if self.accept(":"):
            hi = self.parse_expr().affine()
            return Interval(lo, hi)
        return Interval.point(lo)

    def parse_lvalue(self) -> Expr:
        tok = self.expect_ident()
        name = tok.text
        if self.check("["):
            return self.parse_subscripts(name)
        if name in self.scalars:
            return ScalarRef(name)
        raise ParseError(
            f"assignment to undeclared scalar {name!r}", tok.line, tok.column
        )

    def parse_subscripts(self, name: str) -> ArrayRef:
        tok = self.peek()
        if not any(a.name == name for a in self.arrays):
            raise ParseError(f"undeclared array {name!r}", tok.line, tok.column)
        self.expect("[")
        indices = [self.parse_expr()]
        while self.accept(","):
            indices.append(self.parse_expr())
        self.expect("]")
        decl = next(a for a in self.arrays if a.name == name)
        if len(indices) != decl.ndim:
            raise ParseError(
                f"array {name!r} has {decl.ndim} dims, subscripted with {len(indices)}",
                tok.line,
                tok.column,
            )
        return ArrayRef(name, tuple(indices))

    # expression grammar: expr > term > factor > atom

    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while True:
            if self.accept("+"):
                left = BinOp("+", left, self.parse_term())
            elif self.accept("-"):
                left = BinOp("-", left, self.parse_term())
            else:
                return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while True:
            if self.accept("*"):
                left = BinOp("*", left, self.parse_factor())
            elif self.accept("/"):
                left = BinOp("/", left, self.parse_factor())
            else:
                return left

    def parse_factor(self) -> Expr:
        if self.accept("-"):
            return UnaryOp("-", self.parse_factor())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            if "." in tok.text:
                return Const(float(tok.text))
            return Const(int(tok.text))
        if self.accept("("):
            inner = self.parse_expr()
            self.expect(")")
            return inner
        ident = self.expect_ident()
        name = ident.text
        if self.check("("):
            self.advance()
            args: list[Expr] = []
            if not self.check(")"):
                args.append(self.parse_expr())
                while self.accept(","):
                    args.append(self.parse_expr())
            self.expect(")")
            return Call(name, tuple(args))
        if self.check("["):
            return self.parse_subscripts(name)
        if name in self.params:
            return Param(name)
        if name in self.index_scope:
            return IndexVar(name)
        if name in self.scalars:
            return ScalarRef(name)
        raise ParseError(f"undeclared identifier {name!r}", ident.line, ident.column)


def parse(source: str) -> Program:
    """Parse DSL source text into a :class:`Program`."""
    return Parser(source).parse_program()
