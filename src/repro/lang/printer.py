"""Pretty-printer: lower a :class:`Program` back to DSL source text.

``parse(to_source(p))`` reproduces ``p`` up to cosmetic loop labels — the
property-based round-trip tests rely on this, and it is what makes the
system a genuine *source-to-source* transformer: every optimized program
can be printed and inspected as code.
"""

from __future__ import annotations

from typing import Sequence

from .affine import Affine
from .expr import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    Expr,
    IndexVar,
    Param,
    ScalarRef,
    UnaryOp,
)
from .program import Procedure, Program
from .stmt import Assign, CallStmt, Guard, Interval, Loop, Stmt

_INDENT = "  "


def expr_to_source(expr: Expr) -> str:
    """Render an expression as parseable DSL text."""
    if isinstance(expr, Const):
        return repr(expr.value) if isinstance(expr.value, float) else str(expr.value)
    if isinstance(expr, (Param, IndexVar, ScalarRef)):
        return expr.name
    if isinstance(expr, ArrayRef):
        inner = ", ".join(expr_to_source(e) for e in expr.indices)
        return f"{expr.array}[{inner}]"
    if isinstance(expr, BinOp):
        return f"({expr_to_source(expr.left)} {expr.op} {expr_to_source(expr.right)})"
    if isinstance(expr, UnaryOp):
        return f"(-{expr_to_source(expr.operand)})"
    if isinstance(expr, Call):
        inner = ", ".join(expr_to_source(a) for a in expr.args)
        return f"{expr.func}({inner})"
    raise TypeError(f"cannot print expression {expr!r}")


def affine_to_source(form: Affine) -> str:
    """Render an affine form as parseable DSL text (terms then constant)."""
    parts: list[str] = []
    for name, coeff in form.coeffs:
        if coeff == 1:
            term = name
        elif coeff == -1:
            term = f"-{name}"
        elif coeff.denominator == 1:
            term = f"{int(coeff)}*{name}"
        else:
            term = f"({coeff.numerator}/{coeff.denominator})*{name}"
    # join with explicit signs
        parts.append(term)
    if form.const != 0 or not parts:
        c = form.const
        parts.append(str(int(c)) if c.denominator == 1 else f"({c.numerator}/{c.denominator})")
    out = parts[0]
    for p in parts[1:]:
        out += f" - {p[1:]}" if p.startswith("-") else f" + {p}"
    return out


def interval_to_source(iv: Interval) -> str:
    if iv.lower == iv.upper:
        return affine_to_source(iv.lower)
    return f"{affine_to_source(iv.lower)}:{affine_to_source(iv.upper)}"


def stmt_to_lines(stmt: Stmt, depth: int = 0) -> list[str]:
    pad = _INDENT * depth
    if isinstance(stmt, Assign):
        return [f"{pad}{expr_to_source(stmt.target)} = {expr_to_source(stmt.expr)}"]
    if isinstance(stmt, Loop):
        head = (
            f"{pad}for {stmt.index} = {expr_to_source(stmt.lower)}, "
            f"{expr_to_source(stmt.upper)} {{"
        )
        lines = [head]
        for s in stmt.body:
            lines.extend(stmt_to_lines(s, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, Guard):
        ranges = ", ".join(interval_to_source(iv) for iv in stmt.intervals)
        lines = [f"{pad}when {stmt.index} in [{ranges}] {{"]
        for s in stmt.body:
            lines.extend(stmt_to_lines(s, depth + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for s in stmt.else_body:
                lines.extend(stmt_to_lines(s, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, CallStmt):
        args = ", ".join(expr_to_source(a) for a in stmt.args)
        return [f"{pad}call {stmt.proc}({args})"]
    raise TypeError(f"cannot print statement {stmt!r}")


def proc_to_lines(proc: Procedure) -> list[str]:
    formals = ", ".join(proc.formals)
    lines = [f"proc {proc.name}({formals}) {{"]
    for s in proc.body:
        lines.extend(stmt_to_lines(s, 1))
    lines.append("}")
    return lines


def to_source(program: Program) -> str:
    """Render a whole program as DSL source text."""
    lines: list[str] = [f"program {program.name}"]
    if program.params:
        lines.append("param " + ", ".join(program.params))
    for decl in program.arrays:
        dims = ", ".join(expr_to_source(e) for e in decl.extents)
        lines.append(f"real {decl.name}[{dims}]")
    if program.scalars:
        lines.append("scalar " + ", ".join(program.scalars))
    for proc in program.procedures:
        lines.append("")
        lines.extend(proc_to_lines(proc))
    lines.append("")
    for stmt in program.body:
        lines.extend(stmt_to_lines(stmt))
    return "\n".join(lines) + "\n"


def body_to_source(stmts: Sequence[Stmt]) -> str:
    """Render a statement list (handy in tests and error messages)."""
    lines: list[str] = []
    for s in stmts:
        lines.extend(stmt_to_lines(s))
    return "\n".join(lines)
