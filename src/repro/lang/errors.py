"""Exception hierarchy for the mini-language and the compiler built on it.

Every error raised by the :mod:`repro` package derives from
:class:`ReproError` so callers can catch the whole family with one clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class LangError(ReproError):
    """Base class for language-level (AST construction / validation) errors."""


class ParseError(LangError):
    """Raised when DSL source text cannot be parsed.

    Carries the 1-based source position so tooling can point at the
    offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class ValidationIssue:
    """One structural problem: a path-like location plus a message.

    Collected (rather than raised one at a time) by
    :func:`repro.lang.validate.validation_issues`, and reused as the
    payload of verifier diagnostics so lint output and exceptions agree.
    """

    __slots__ = ("where", "message")

    def __init__(self, where: str, message: str) -> None:
        self.where = where
        self.message = message

    def __str__(self) -> str:
        return f"{self.where}: {self.message}"

    def __repr__(self) -> str:
        return f"ValidationIssue({self.where!r}, {self.message!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ValidationIssue)
            and self.where == other.where
            and self.message == other.message
        )


class ValidationError(LangError):
    """Raised when a structurally invalid program is validated or executed.

    ``issues`` carries every problem found (validation no longer stops at
    the first error); the exception message lists them all.
    """

    def __init__(self, message: str, issues: tuple = ()) -> None:
        self.issues: tuple[ValidationIssue, ...] = tuple(issues)
        super().__init__(message)

    @staticmethod
    def from_issues(program_name: str, issues: tuple) -> "ValidationError":
        lines = [f"{program_name}: {len(issues)} validation error(s)"]
        lines.extend(f"  {issue}" for issue in issues)
        return ValidationError("\n".join(lines), issues)


class AnalysisError(ReproError):
    """Raised when a program falls outside what an analysis can model."""


class TransformError(ReproError):
    """Raised when a transformation cannot be applied legally."""


class NotAffineError(AnalysisError):
    """Raised when an expression required to be affine is not."""


class SimulationError(ReproError):
    """Raised by the memory-hierarchy simulator on invalid configuration."""
