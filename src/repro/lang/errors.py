"""Exception hierarchy for the mini-language and the compiler built on it.

Every error raised by the :mod:`repro` package derives from
:class:`ReproError` so callers can catch the whole family with one clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class LangError(ReproError):
    """Base class for language-level (AST construction / validation) errors."""


class ParseError(LangError):
    """Raised when DSL source text cannot be parsed.

    Carries the 1-based source position so tooling can point at the
    offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class ValidationError(LangError):
    """Raised when a structurally invalid program is validated or executed."""


class AnalysisError(ReproError):
    """Raised when a program falls outside what an analysis can model."""


class TransformError(ReproError):
    """Raised when a transformation cannot be applied legally."""


class NotAffineError(AnalysisError):
    """Raised when an expression required to be affine is not."""


class SimulationError(ReproError):
    """Raised by the memory-hierarchy simulator on invalid configuration."""
