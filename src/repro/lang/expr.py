"""Expression AST for the mini loop language.

Expressions are immutable trees.  Arithmetic operators are overloaded so
tests and builders can write ``a[i] + 0.5 * b[i]`` directly.  The central
analysis hook is :meth:`Expr.affine`, which extracts the canonical affine
form of subscripts and bounds (or raises :class:`NotAffineError`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from .affine import Affine
from .errors import NotAffineError

NumberLike = Union[int, float]


class Expr:
    """Base class for all expressions."""

    __slots__ = ()

    # -- operator sugar ----------------------------------------------------

    def __add__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", self, wrap(other))

    def __radd__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", wrap(other), self)

    def __sub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", self, wrap(other))

    def __rsub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", wrap(other), self)

    def __mul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("*", self, wrap(other))

    def __rmul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("*", wrap(other), self)

    def __truediv__(self, other: "ExprLike") -> "BinOp":
        return BinOp("/", self, wrap(other))

    def __rtruediv__(self, other: "ExprLike") -> "BinOp":
        return BinOp("/", wrap(other), self)

    def __neg__(self) -> "UnaryOp":
        return UnaryOp("-", self)

    # -- analysis hooks -----------------------------------------------------

    def affine(self) -> Affine:
        """Canonical affine form of this expression.

        Raises :class:`NotAffineError` for anything nonlinear (products of
        variables, calls, array reads, ...).
        """
        raise NotAffineError(f"expression {self!r} is not affine")

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()


ExprLike = Union[Expr, NumberLike]


def wrap(value: ExprLike) -> Expr:
    """Coerce Python numbers to :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(value)
    raise TypeError(f"cannot use {value!r} as an expression")


@dataclass(frozen=True)
class Const(Expr):
    """A numeric literal."""

    value: NumberLike

    def affine(self) -> Affine:
        return Affine.constant(self.value)

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, float) else str(self.value)


@dataclass(frozen=True)
class Param(Expr):
    """A symbolic program parameter such as the mesh size ``N``."""

    name: str

    def affine(self) -> Affine:
        return Affine.var(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IndexVar(Expr):
    """A loop induction variable."""

    name: str

    def affine(self) -> Affine:
        return Affine.var(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ScalarRef(Expr):
    """A read of a scalar variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef(Expr):
    """A subscripted array reference ``A[e1, ..., ek]``.

    Subscripts are listed outermost dimension first (row-major order in the
    printed form); the memory layout is a property of the
    :class:`~repro.core.regroup.layout.Layout`, not of the reference.
    """

    array: str
    indices: tuple[Expr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", tuple(wrap(e) for e in self.indices))

    def children(self) -> tuple[Expr, ...]:
        return self.indices

    def index_affines(self) -> tuple[Affine, ...]:
        return tuple(e.affine() for e in self.indices)

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.indices)
        return f"{self.array}[{inner}]"


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic: ``+ - * /``."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def affine(self) -> Affine:
        if self.op == "+":
            return self.left.affine() + self.right.affine()
        if self.op == "-":
            return self.left.affine() - self.right.affine()
        if self.op == "*":
            lhs, rhs = self.left.affine(), self.right.affine()
            if lhs.is_constant():
                return rhs * lhs.constant_value()
            if rhs.is_constant():
                return lhs * rhs.constant_value()
            raise NotAffineError(f"nonlinear product {self}")
        if self.op == "/":
            rhs = self.right.affine()
            if rhs.is_constant() and rhs.constant_value() != 0:
                return self.left.affine() * (1 / rhs.constant_value())
            raise NotAffineError(f"nonlinear quotient {self}")
        raise NotAffineError(f"operator {self.op!r} is not affine")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary negation."""

    op: str
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def affine(self) -> Affine:
        if self.op == "-":
            return -self.operand.affine()
        raise NotAffineError(f"operator {self.op!r} is not affine")

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Call(Expr):
    """A call to an opaque pure function (``f``, ``g``, ``sqrt``...).

    Calls model the numeric work the paper's kernels do; the interpreter
    binds them to deterministic numpy implementations, while every
    dependence analysis treats them as black boxes over their arguments.
    """

    func: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(wrap(a) for a in self.args))

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.func}({inner})"


def array_reads(expr: Expr) -> list[ArrayRef]:
    """All array references appearing in ``expr`` (document order)."""
    return [node for node in expr.walk() if isinstance(node, ArrayRef)]


def scalar_reads(expr: Expr) -> list[ScalarRef]:
    return [node for node in expr.walk() if isinstance(node, ScalarRef)]


def free_index_vars(expr: Expr) -> frozenset[str]:
    return frozenset(
        node.name for node in expr.walk() if isinstance(node, IndexVar)
    )
