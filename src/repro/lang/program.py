"""Program-level AST: array declarations, procedures, whole programs.

A :class:`Program` is the unit every transformation consumes and produces.
Arrays use 1-based inclusive Fortran-style indexing; extents are affine in
the symbolic parameters.  The *declared* order of subscripts carries no
layout meaning — memory placement is owned by
:class:`repro.core.regroup.layout.Layout`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Optional, Sequence

from .affine import Affine
from .errors import ValidationError
from .expr import Expr, wrap
from .stmt import Loop, Stmt, as_body, loop_nest_depth


@dataclass(frozen=True)
class SliceOrigin:
    """Provenance of a split array: which slice of which array it was.

    ``parent`` chains through repeated splits back to the original
    declaration, letting the interpreter reconstruct identical initial
    contents for split and unsplit versions of a program.
    """

    name: str  # the array that was split
    dim: int  # 0-based dimension that was eliminated
    index: int  # 1-based slice taken
    extent: int  # size of the eliminated dimension
    parent: Optional["SliceOrigin"] = None


@dataclass(frozen=True)
class ArrayDecl:
    """Declaration of a global array: name and per-dimension extents.

    ``extents[k]`` is the size of dimension ``k`` (valid subscripts are
    ``1 .. extents[k]``), affine in program parameters.  ``origin`` records
    the array this one was split from (array splitting bookkeeping).
    """

    name: str
    extents: tuple[Expr, ...]
    elem_size: int = 8  # bytes; double precision throughout, like the paper
    origin: Optional[str] = field(default=None, compare=False)
    #: provenance when this array came from array splitting — lets the
    #: interpreter give split arrays the same initial contents as the
    #: original slice, so "split output == original output" is a real
    #: bit-level check.
    origin_slice: Optional[SliceOrigin] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "extents", tuple(wrap(e) for e in self.extents))
        if not self.extents:
            raise ValidationError(f"array {self.name!r} needs at least 1 dimension")

    @property
    def ndim(self) -> int:
        return len(self.extents)

    def extent_affines(self) -> tuple[Affine, ...]:
        return tuple(e.affine() for e in self.extents)

    def size_elems(self, params: Mapping[str, int]) -> int:
        total = 1
        for e in self.extent_affines():
            v = e.evaluate(params)
            if v.denominator != 1 or v <= 0:
                raise ValidationError(
                    f"array {self.name!r} has non-positive extent {e} = {v}"
                )
            total *= int(v)
        return total

    def shape(self, params: Mapping[str, int]) -> tuple[int, ...]:
        return tuple(int(e.evaluate(params)) for e in self.extent_affines())

    def __str__(self) -> str:
        dims = ", ".join(str(e) for e in self.extents)
        return f"real {self.name}[{dims}]"


@dataclass(frozen=True)
class Procedure:
    """A named procedure (substrate for the paper's inlining pass).

    Formal parameters are substituted textually at inline time; there is no
    separate calling convention because the paper inlines everything before
    analysis begins.
    """

    name: str
    formals: tuple[str, ...]
    body: tuple[Stmt, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", as_body(self.body))


@dataclass(frozen=True)
class Program:
    """A whole program: parameters, array/scalar declarations, body.

    The body is a flat sequence of loops and non-loop statements — the shape
    the fusion algorithm assumes (paper Fig. 5's first assumption).
    """

    name: str
    params: tuple[str, ...]
    arrays: tuple[ArrayDecl, ...]
    body: tuple[Stmt, ...]
    scalars: tuple[str, ...] = ()
    procedures: tuple[Procedure, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", as_body(self.body))
        seen: set[str] = set()
        for a in self.arrays:
            if a.name in seen:
                raise ValidationError(f"duplicate array declaration {a.name!r}")
            seen.add(a.name)

    # -- lookup -------------------------------------------------------------

    def array(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(name)

    def has_array(self, name: str) -> bool:
        return any(a.name == name for a in self.arrays)

    def array_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.arrays)

    def procedure(self, name: str) -> Procedure:
        for p in self.procedures:
            if p.name == name:
                return p
        raise KeyError(name)

    # -- rebuilding -----------------------------------------------------------

    def with_body(self, body: Sequence[Stmt]) -> "Program":
        return replace(self, body=as_body(body))

    def with_arrays(self, arrays: Sequence[ArrayDecl]) -> "Program":
        return replace(self, arrays=tuple(arrays))

    # -- statistics (Fig. 9 substrate) ---------------------------------------

    def walk(self) -> Iterator[Stmt]:
        for s in self.body:
            yield from s.walk()

    def top_level_loops(self) -> list[Loop]:
        return [s for s in self.body if isinstance(s, Loop)]

    def all_loops(self) -> list[Loop]:
        return [s for s in self.walk() if isinstance(s, Loop)]

    def loop_nest_count(self) -> int:
        """Number of top-level loop nests."""
        return len(self.top_level_loops())

    def loop_count(self) -> int:
        """Total number of loops at all levels."""
        return len(self.all_loops())

    def nest_depth_range(self) -> tuple[int, int]:
        depths = [loop_nest_depth(nest) for nest in self.top_level_loops()]
        if not depths:
            return (0, 0)
        return (min(depths), max(depths))

    def array_count(self) -> int:
        return len(self.arrays)

    def stats(self) -> dict:
        lo, hi = self.nest_depth_range()
        return {
            "name": self.name,
            "loops": self.loop_count(),
            "loop_nests": self.loop_nest_count(),
            "nest_levels": (lo, hi),
            "arrays": self.array_count(),
        }

    def __str__(self) -> str:
        return (
            f"program {self.name}: {self.loop_count()} loops in "
            f"{self.loop_nest_count()} nests, {self.array_count()} arrays"
        )
