"""The :class:`AddressStream` type and its chunked builder.

A stream is three parallel columns over numpy — int64 addresses, a bool
write mask, and optional int32 static reference ids — plus a small
metadata record saying what the addresses denominate (bytes under a
concrete layout, or canonical element keys) and which cache-line /
element geometry they were produced for.  Multi-million access streams
stay compact (struct-of-arrays, no Python objects per access), and the
chunk API lets producers accumulate and serializers walk the columns
without materializing intermediate copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Sequence

import numpy as np

#: address units a stream may be denominated in
UNITS = ("bytes", "elements")


@dataclass
class StreamMeta:
    """What the addresses mean and where they came from."""

    name: str = "stream"
    #: producing subsystem: interp | codegen | interleave | import | cache
    source: str = "unknown"
    #: "bytes" (layout applied) or "elements" (canonical global keys)
    unit: str = "bytes"
    #: geometry hints, carried so an imported stream can be simulated
    #: and analyzed without guessing (None = unknown, lint S501)
    line_bytes: Optional[int] = None
    elem_bytes: Optional[int] = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.unit not in UNITS:
            raise ValueError(f"unknown stream unit {self.unit!r}; expected {UNITS}")

    @property
    def has_geometry(self) -> bool:
        return self.line_bytes is not None and self.elem_bytes is not None

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "source": self.source,
            "unit": self.unit,
            "line_bytes": self.line_bytes,
            "elem_bytes": self.elem_bytes,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "StreamMeta":
        return cls(
            name=str(data.get("name", "stream")),
            source=str(data.get("source", "unknown")),
            unit=str(data.get("unit", "bytes")),
            line_bytes=(
                None if data.get("line_bytes") is None else int(data["line_bytes"])
            ),
            elem_bytes=(
                None if data.get("elem_bytes") is None else int(data["elem_bytes"])
            ),
            extra=dict(data.get("extra") or {}),
        )


class AddressStream:
    """An ordered sequence of memory accesses as typed columns.

    Supports the array protocol (``np.asarray(stream)`` yields the
    address column), so vectorized consumers written against raw numpy
    arrays keep working unchanged.
    """

    def __init__(
        self,
        addresses: np.ndarray,
        writes: Optional[np.ndarray] = None,
        ref_ids: Optional[np.ndarray] = None,
        meta: Optional[StreamMeta] = None,
    ) -> None:
        self._addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        if self._addresses.ndim != 1:
            raise ValueError("addresses must be one-dimensional")
        n = len(self._addresses)
        if writes is None:
            self._writes = np.zeros(n, dtype=bool)
        else:
            self._writes = np.ascontiguousarray(writes, dtype=bool)
        if len(self._writes) != n:
            raise ValueError(
                f"writes column length {len(self._writes)} != addresses {n}"
            )
        if ref_ids is not None:
            ref_ids = np.ascontiguousarray(ref_ids, dtype=np.int32)
            if len(ref_ids) != n:
                raise ValueError(
                    f"ref_ids column length {len(ref_ids)} != addresses {n}"
                )
        self._ref_ids = ref_ids
        self.meta = meta if meta is not None else StreamMeta()

    # -- columns -------------------------------------------------------

    @property
    def addresses(self) -> np.ndarray:
        return self._addresses

    @property
    def writes(self) -> np.ndarray:
        return self._writes

    @property
    def ref_ids(self) -> Optional[np.ndarray]:
        return self._ref_ids

    def __len__(self) -> int:
        return len(self._addresses)

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        if dtype is None:
            return self._addresses
        return self._addresses.astype(dtype)

    def __repr__(self) -> str:
        return (
            f"AddressStream(n={len(self)}, unit={self.meta.unit!r}, "
            f"source={self.meta.source!r}, writes={int(self._writes.sum())})"
        )

    # -- derived views -------------------------------------------------

    def lines(self, line_bytes: Optional[int] = None) -> np.ndarray:
        """The cache-line id of every access (needs a line size)."""
        size = line_bytes if line_bytes is not None else self.meta.line_bytes
        if size is None or size < 1:
            raise ValueError("stream has no line_bytes; pass one explicitly")
        return self._addresses // size

    def slice(self, start: int, stop: int) -> "AddressStream":
        return AddressStream(
            self._addresses[start:stop],
            self._writes[start:stop],
            None if self._ref_ids is None else self._ref_ids[start:stop],
            meta=self.meta,
        )

    def chunks(
        self, chunk_size: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]]:
        """Walk the columns ``chunk_size`` accesses at a time."""
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, len(self), chunk_size):
            stop = start + chunk_size
            yield (
                self._addresses[start:stop],
                self._writes[start:stop],
                None if self._ref_ids is None else self._ref_ids[start:stop],
            )

    def fingerprint(self) -> str:
        """Content hash over all columns (stable across processes)."""
        import hashlib

        h = hashlib.sha256()
        h.update(np.ascontiguousarray(self._addresses).tobytes())
        h.update(np.packbits(self._writes).tobytes())
        if self._ref_ids is not None:
            h.update(np.ascontiguousarray(self._ref_ids).tobytes())
        return h.hexdigest()[:16]

    # -- constructors --------------------------------------------------

    @classmethod
    def from_trace(
        cls,
        trace,
        layout=None,
        name: str = "trace",
        source: str = "interp",
    ) -> "AddressStream":
        """A stream from an :class:`~repro.interp.trace.AccessTrace`.

        With a :class:`~repro.core.regroup.layout.Layout` the addresses
        are concrete byte addresses under that placement; without one
        they are the canonical element keys (identity layout).
        """
        from ..memsim.geometry import ELEM_BYTES, L2_LINE_BYTES

        if layout is not None:
            addresses = layout.addresses(trace, in_bytes=True)
            meta = StreamMeta(
                name=name,
                source=source,
                unit="bytes",
                line_bytes=L2_LINE_BYTES,
                elem_bytes=ELEM_BYTES,
            )
        else:
            addresses = trace.global_keys()
            meta = StreamMeta(
                name=name, source=source, unit="elements", elem_bytes=ELEM_BYTES
            )
        return cls(addresses, trace.writes, trace.ref_ids, meta=meta)

    @classmethod
    def from_keys(
        cls,
        keys: np.ndarray,
        name: str = "keys",
        source: str = "interleave",
    ) -> "AddressStream":
        """A read-only stream of canonical element keys."""
        from ..memsim.geometry import ELEM_BYTES

        meta = StreamMeta(
            name=name, source=source, unit="elements", elem_bytes=ELEM_BYTES
        )
        return cls(np.asarray(keys, dtype=np.int64), meta=meta)

    @classmethod
    def concat(
        cls, streams: Sequence["AddressStream"], name: str = "concat"
    ) -> "AddressStream":
        """Concatenate streams; ref_ids survive only if every part has them."""
        if not streams:
            return cls(np.empty(0, dtype=np.int64))
        addresses = np.concatenate([s.addresses for s in streams])
        writes = np.concatenate([s.writes for s in streams])
        refs = None
        if all(s.ref_ids is not None for s in streams):
            refs = np.concatenate([s.ref_ids for s in streams])
        meta = StreamMeta(
            name=name,
            source=streams[0].meta.source,
            unit=streams[0].meta.unit,
            line_bytes=streams[0].meta.line_bytes,
            elem_bytes=streams[0].meta.elem_bytes,
        )
        return cls(addresses, writes, refs, meta=meta)


class StreamBuilder:
    """Accumulates column chunks and finalizes an :class:`AddressStream`.

    The producer-side mirror of :class:`AddressStream.chunks`: tracers
    append per-segment arrays as they go and pay one concatenation at
    the end (same discipline as ``TraceBuilder``).
    """

    def __init__(self, meta: Optional[StreamMeta] = None, with_refs: bool = True):
        self.meta = meta if meta is not None else StreamMeta()
        self.with_refs = with_refs
        self._addresses: list[np.ndarray] = []
        self._writes: list[np.ndarray] = []
        self._ref_ids: list[np.ndarray] = []

    def append(
        self,
        addresses: np.ndarray,
        writes: Optional[np.ndarray] = None,
        ref_ids: Optional[np.ndarray] = None,
    ) -> None:
        addresses = np.asarray(addresses, dtype=np.int64)
        self._addresses.append(addresses)
        self._writes.append(
            np.zeros(len(addresses), dtype=bool)
            if writes is None
            else np.asarray(writes, dtype=bool)
        )
        if self.with_refs:
            if ref_ids is None:
                self.with_refs = False
                self._ref_ids = []
            else:
                self._ref_ids.append(np.asarray(ref_ids, dtype=np.int32))

    def build(self) -> AddressStream:
        def cat(chunks: list[np.ndarray], dtype) -> np.ndarray:
            if not chunks:
                return np.empty(0, dtype=dtype)
            return np.concatenate(chunks)

        return AddressStream(
            cat(self._addresses, np.int64),
            cat(self._writes, bool),
            cat(self._ref_ids, np.int32) if self.with_refs else None,
            meta=self.meta,
        )
