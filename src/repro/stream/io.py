"""On-disk address-stream formats: RLE-compressed binary, and CSV.

Binary layout (everything little-endian, ``.ast`` by convention)::

    magic   b"RAST"
    version u16      (currently 1)
    flags   u16      bit0: ref_ids column present
    mlen    u32      metadata length
    meta    mlen bytes of UTF-8 JSON (:meth:`StreamMeta.to_json`)
    nchunks u32
    per chunk:
      n       u32    accesses in this chunk
      addr    u8 encoding tag, then the address column:
                0 = raw:       n * i64
                1 = rle-delta: first i64, npairs u32,
                               npairs * (delta i64, run u32)
      writes  rle:   npairs u32, npairs * (value u8, run u32)
      ref_ids rle (only when flagged): npairs u32,
                               npairs * (value i32, run u32)

Affine loop nests emit long arithmetic address sequences, so the
delta-RLE typically collapses a chunk to a handful of (stride, run)
pairs; the raw tag keeps pathological (e.g. random) streams from
expanding — whichever encoding is smaller wins, per chunk.

CSV is the interchange format for external traces: an optional
``# repro-address-stream v1 {json-meta}`` comment, an optional header
row, then ``address[,write[,ref_id]]`` rows (decimal or 0x-hex
addresses).  Import is deliberately tolerant — a bare single-column
address list from any tracing tool loads; missing geometry metadata is
what the S501 lint flags downstream.
"""

from __future__ import annotations

import io as _io
import json
import struct
from pathlib import Path
from typing import Optional, TextIO, Union

import numpy as np

from .stream import AddressStream, StreamMeta

MAGIC = b"RAST"
FORMAT_VERSION = 1
_FLAG_REFS = 1
#: default accesses per chunk when serializing
CHUNK_SIZE = 1 << 16

CSV_MARKER = "# repro-address-stream"


class StreamFormatError(ValueError):
    """Raised when a stream file is malformed."""


# -- RLE helpers -------------------------------------------------------


def _rle(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(run values, run lengths) of a 1-D array."""
    n = len(values)
    if n == 0:
        return values[:0], np.empty(0, dtype=np.int64)
    change = np.nonzero(values[1:] != values[:-1])[0] + 1
    starts = np.concatenate(([0], change))
    runs = np.diff(np.concatenate((starts, [n])))
    return values[starts], runs


def _unrle(values: np.ndarray, runs: np.ndarray) -> np.ndarray:
    return np.repeat(values, runs)


# -- binary writer -----------------------------------------------------


def _encode_addresses(addr: np.ndarray) -> bytes:
    n = len(addr)
    raw = addr.astype("<i8").tobytes()
    if n < 2:
        return b"\x00" + raw
    deltas = np.diff(addr)
    vals, runs = _rle(deltas)
    # tag + first + npairs + pairs vs tag + raw column
    rle_size = 1 + 8 + 4 + len(vals) * 12
    if rle_size >= 1 + len(raw):
        return b"\x00" + raw
    out = [b"\x01", struct.pack("<q", int(addr[0])), struct.pack("<I", len(vals))]
    pairs = np.empty(len(vals), dtype=[("delta", "<i8"), ("run", "<u4")])
    pairs["delta"] = vals
    pairs["run"] = runs
    out.append(pairs.tobytes())
    return b"".join(out)


def _encode_rle_column(values: np.ndarray, dtype: str) -> bytes:
    vals, runs = _rle(values)
    pairs = np.empty(len(vals), dtype=[("value", dtype), ("run", "<u4")])
    pairs["value"] = vals
    pairs["run"] = runs
    return struct.pack("<I", len(vals)) + pairs.tobytes()


def write_stream(
    path: Union[str, Path],
    stream: AddressStream,
    chunk_size: int = CHUNK_SIZE,
) -> Path:
    """Serialize a stream to the binary ``.ast`` format; returns the path."""
    path = Path(path)
    meta_blob = json.dumps(stream.meta.to_json(), sort_keys=True).encode()
    flags = _FLAG_REFS if stream.ref_ids is not None else 0
    chunks = list(stream.chunks(chunk_size)) if len(stream) else []
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<HH", FORMAT_VERSION, flags))
        fh.write(struct.pack("<I", len(meta_blob)))
        fh.write(meta_blob)
        fh.write(struct.pack("<I", len(chunks)))
        for addr, writes, refs in chunks:
            fh.write(struct.pack("<I", len(addr)))
            fh.write(_encode_addresses(addr))
            fh.write(_encode_rle_column(writes.astype(np.uint8), "u1"))
            if flags & _FLAG_REFS:
                fh.write(_encode_rle_column(refs, "<i4"))
    return path


# -- binary reader -----------------------------------------------------


class _Reader:
    def __init__(self, blob: bytes) -> None:
        self.blob = blob
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.blob):
            raise StreamFormatError("truncated stream file")
        out = self.blob[self.pos : self.pos + n]
        self.pos += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self.take(8))[0]

    def array(self, dtype, count: int) -> np.ndarray:
        dt = np.dtype(dtype)
        return np.frombuffer(self.take(dt.itemsize * count), dtype=dt)


def _decode_addresses(r: _Reader, n: int) -> np.ndarray:
    tag = r.u8()
    if tag == 0:
        return r.array("<i8", n).astype(np.int64)
    if tag != 1:
        raise StreamFormatError(f"unknown address encoding tag {tag}")
    first = r.i64()
    npairs = r.u32()
    pairs = r.array([("delta", "<i8"), ("run", "<u4")], npairs)
    deltas = _unrle(pairs["delta"], pairs["run"].astype(np.int64))
    if len(deltas) != n - 1:
        raise StreamFormatError("address RLE does not cover the chunk")
    out = np.empty(n, dtype=np.int64)
    out[0] = first
    np.cumsum(deltas, out=out[1:])
    out[1:] += first
    return out


def _decode_rle_column(r: _Reader, n: int, dtype: str) -> np.ndarray:
    npairs = r.u32()
    pairs = r.array([("value", dtype), ("run", "<u4")], npairs)
    out = _unrle(pairs["value"], pairs["run"].astype(np.int64))
    if len(out) != n:
        raise StreamFormatError("column RLE does not cover the chunk")
    return out


def read_stream(path: Union[str, Path]) -> AddressStream:
    """Load a stream from disk, auto-detecting binary vs. CSV."""
    path = Path(path)
    with open(path, "rb") as fh:
        head = fh.read(4)
    if head != MAGIC:
        return read_stream_csv(path)
    return read_stream_binary(path)


def read_stream_binary(path: Union[str, Path]) -> AddressStream:
    """Load the binary format only; malformed files raise (no CSV fallback)."""
    path = Path(path)
    r = _Reader(path.read_bytes())
    if r.take(4) != MAGIC:
        raise StreamFormatError(f"{path}: not a binary address stream")
    version = r.u16()
    if version != FORMAT_VERSION:
        raise StreamFormatError(
            f"unsupported stream format version {version} (expected {FORMAT_VERSION})"
        )
    flags = r.u16()
    meta = StreamMeta.from_json(json.loads(r.take(r.u32()).decode()))
    nchunks = r.u32()
    addr_chunks: list[np.ndarray] = []
    write_chunks: list[np.ndarray] = []
    ref_chunks: list[np.ndarray] = []
    for _ in range(nchunks):
        n = r.u32()
        addr_chunks.append(_decode_addresses(r, n))
        write_chunks.append(_decode_rle_column(r, n, "u1").astype(bool))
        if flags & _FLAG_REFS:
            ref_chunks.append(_decode_rle_column(r, n, "<i4").astype(np.int32))

    def cat(chunks: list[np.ndarray], dtype) -> np.ndarray:
        if not chunks:
            return np.empty(0, dtype=dtype)
        return np.concatenate(chunks)

    return AddressStream(
        cat(addr_chunks, np.int64),
        cat(write_chunks, bool),
        cat(ref_chunks, np.int32) if flags & _FLAG_REFS else None,
        meta=meta,
    )


# -- CSV ---------------------------------------------------------------


def write_stream_csv(
    path: Union[str, Path], stream: AddressStream
) -> Path:
    """Serialize to CSV (metadata comment + header + one row per access)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            f"{CSV_MARKER} v{FORMAT_VERSION} "
            + json.dumps(stream.meta.to_json(), sort_keys=True)
            + "\n"
        )
        has_refs = stream.ref_ids is not None
        fh.write("address,write,ref_id\n" if has_refs else "address,write\n")
        columns = [stream.addresses, stream.writes.astype(np.int8)]
        if has_refs:
            columns.append(stream.ref_ids)
        np.savetxt(fh, np.column_stack(columns), fmt="%d", delimiter=",")
    return path


def _parse_address(token: str) -> int:
    token = token.strip()
    return int(token, 16) if token.lower().startswith("0x") else int(token)


def read_stream_csv(source: Union[str, Path, TextIO]) -> AddressStream:
    """Parse a CSV address stream (ours, or any external address list).

    Accepts 1-3 columns — ``address[,write[,ref_id]]`` — with or without
    the metadata comment and header row; addresses may be decimal or
    0x-hex.  External files without our metadata comment come back with
    ``source="import"`` and no geometry hints.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_stream_csv(fh)
    meta: Optional[StreamMeta] = None
    addresses: list[int] = []
    writes: list[int] = []
    refs: list[int] = []
    ncols = 0
    for lineno, line in enumerate(source, 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith(CSV_MARKER):
                _, _, blob = line.partition("{")
                if blob:
                    meta = StreamMeta.from_json(json.loads("{" + blob))
            continue
        cells = [c.strip() for c in line.split(",")]
        try:
            addr = _parse_address(cells[0])
        except ValueError:
            if not addresses:  # tolerate one header row
                continue
            raise StreamFormatError(
                f"line {lineno}: bad address {cells[0]!r}"
            ) from None
        if not addresses:
            ncols = min(len(cells), 3)
        addresses.append(addr)
        if ncols >= 2 and len(cells) >= 2:
            try:
                writes.append(int(cells[1]))
            except ValueError:
                raise StreamFormatError(
                    f"line {lineno}: bad write flag {cells[1]!r}"
                ) from None
        else:
            writes.append(0)
        if ncols >= 3 and len(cells) >= 3:
            refs.append(int(cells[2]))
    if meta is None:
        meta = StreamMeta(name="imported", source="import", unit="bytes")
    addr_arr = np.asarray(addresses, dtype=np.int64)
    write_arr = np.asarray(writes, dtype=bool) if writes else None
    ref_arr = (
        np.asarray(refs, dtype=np.int32) if refs and len(refs) == len(addresses)
        else None
    )
    return AddressStream(addr_arr, write_arr, ref_arr, meta=meta)


def read_stream_text(text: str) -> AddressStream:
    """CSV parse from an in-memory string (tests, pipes)."""
    return read_stream_csv(_io.StringIO(text))
