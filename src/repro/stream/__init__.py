"""Typed address streams: the common currency below the trace layer.

An :class:`AddressStream` is the one representation every producer of
memory references emits — the interpreter tracer, the codegen tracer,
the multicore interleaver, and external traces imported from disk — and
every consumer accepts: the cache/hierarchy simulators, the locality
analyzers, and the on-disk trace cache.  See DESIGN §9.
"""

from .io import (
    FORMAT_VERSION,
    StreamFormatError,
    read_stream,
    read_stream_binary,
    read_stream_csv,
    read_stream_text,
    write_stream,
    write_stream_csv,
)
from .stream import AddressStream, StreamBuilder, StreamMeta

__all__ = [
    "AddressStream",
    "FORMAT_VERSION",
    "StreamBuilder",
    "StreamFormatError",
    "StreamMeta",
    "read_stream",
    "read_stream_binary",
    "read_stream_csv",
    "read_stream_text",
    "write_stream",
    "write_stream_csv",
]
