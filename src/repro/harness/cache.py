"""On-disk trace and result cache for the experiment harness.

Trace generation (interpreting the program) dominates warm experiment
time once the fast simulation engine is in play, and the same (program,
size, optimization level, layout) tuple is re-traced by every benchmark
that touches it.  :class:`TraceCache` persists the
:class:`~repro.stream.AddressStream` the simulator actually consumes —
byte addresses plus the write mask, in the RLE-compressed ``.ast``
binary format — under ``.cache/`` so repeat runs replay instead of
re-tracing, plus the final :class:`~repro.memsim.MemStats` per (trace,
machine, engine) so fully-repeated experiments skip simulation
entirely.  Entries written by the pre-stream ``.npz`` layout simply
read as misses and are re-traced once.

Keys are content hashes over the compiled program text, the parameter
binding, the step count, and a fingerprint of the data layout (array
placements), so *any* change to the program, the transformations applied
to it, or the regrouped layout invalidates the entry automatically.
Explicit invalidation is ``TraceCache.clear()`` or
``python -m repro cache --clear``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Mapping, Optional

from ..core.regroup.layout import Layout
from ..memsim import MachineConfig, MemStats
from ..obs import metrics
from ..stream import AddressStream, write_stream
from ..stream.io import StreamFormatError, read_stream_binary

#: Default cache directory (overridable via ``REPRO_CACHE_DIR``).
DEFAULT_CACHE_DIR = ".cache"


def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def layout_fingerprint(layout: Layout) -> str:
    """Stable hash of a data layout (the regrouping side of the key)."""
    items = []
    for name in sorted(layout.placements):
        p = layout.placements[name]
        items.append(
            (p.name, tuple(p.shape), int(p.offset), tuple(p.strides), p.elem_size)
        )
    return hashlib.sha256(repr(items).encode()).hexdigest()[:16]


class TraceCache:
    """Content-addressed store for address streams and experiment results."""

    def __init__(self, root: Optional[Path | str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- keys ----------------------------------------------------------

    def trace_key(
        self,
        program_text: str,
        params: Mapping[str, int],
        steps: int,
        layout_hash: str,
    ) -> str:
        """Key of one (program variant, size, layout) address stream.

        ``program_text`` is the *compiled* variant's source, so the
        optimization level and every fusion/regroup knob that changes
        the access order is already folded in; ``layout_hash`` covers
        transformations that only move data.
        """
        blob = json.dumps(
            {
                "program": program_text,
                "params": {k: int(v) for k, v in sorted(params.items())},
                "steps": int(steps),
                "layout": layout_hash,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:32]

    def result_key(
        self, trace_key: str, machine: MachineConfig, engine: Optional[str]
    ) -> str:
        """Key of one simulated outcome: trace x machine x engine."""
        blob = f"{trace_key}|{machine!r}|{engine or ''}"
        return hashlib.sha256(blob.encode()).hexdigest()[:32]

    # -- traces --------------------------------------------------------

    def load_trace(self, key: str) -> Optional[AddressStream]:
        path = self.root / f"trace-{key}.ast"
        if not path.exists():
            metrics.inc("cache.trace.misses")
            return None
        try:
            stream = read_stream_binary(path)
        except (OSError, StreamFormatError, ValueError):
            metrics.inc("cache.trace.misses")
            return None  # corrupt entry: treat as a miss, it will be rewritten
        metrics.inc("cache.trace.hits")
        return stream

    def store_trace(self, key: str, stream: AddressStream) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"trace-{key}.ast"
        tmp = path.with_suffix(".tmp.ast")
        write_stream(tmp, stream)
        tmp.replace(path)  # atomic publish: concurrent readers never see partial files
        metrics.inc("cache.trace.stores")

    # -- results -------------------------------------------------------

    def load_result(self, key: str) -> Optional[MemStats]:
        path = self.root / f"result-{key}.json"
        if not path.exists():
            metrics.inc("cache.result.misses")
            return None
        try:
            stats = MemStats(**json.loads(path.read_text()))
        except (OSError, TypeError, ValueError):
            metrics.inc("cache.result.misses")
            return None
        metrics.inc("cache.result.hits")
        return stats

    def store_result(self, key: str, stats: MemStats) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"result-{key}.json"
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(dataclasses.asdict(stats)))
        tmp.replace(path)
        metrics.inc("cache.result.stores")

    # -- maintenance ---------------------------------------------------

    def clear(self) -> int:
        """Remove every cache entry; returns the number of files removed.

        Covers the autotuner's ``tune-*`` score entries too — the tune
        cache shares this directory (see :class:`repro.tune.TuneCache`).
        """
        removed = 0
        if self.root.is_dir():
            for path in self.root.iterdir():
                if path.name.startswith(("trace-", "result-", "tune-")):
                    path.unlink()
                    removed += 1
        return removed

    def info(self) -> dict[str, int]:
        """Entry counts and on-disk footprint."""
        traces = results = tune = size = 0
        if self.root.is_dir():
            for path in self.root.iterdir():
                if path.name.startswith("trace-"):
                    traces += 1
                elif path.name.startswith("result-"):
                    results += 1
                elif path.name.startswith("tune-"):
                    tune += 1
                else:
                    continue
                size += path.stat().st_size
        return {"traces": traces, "results": results, "tune": tune, "bytes": size}
