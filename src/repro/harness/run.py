"""The experiment front door: ``run(RunRequest) -> RunResult``.

One entry point replaces the historical trio (``measure``,
``measure_application``, ``run_application``), removed in v2.0.  A
:class:`RunRequest` names *what* to run —
program (registry name or :class:`~repro.lang.Program`), levels, size,
machine, option objects — and *how* — engine, cache, verification,
parallelism, and observability sinks (:class:`~repro.obs.TraceConfig`).

Serial requests keep the full :class:`~repro.harness.VariantResult`
(including the compiled variant and collected spans); parallel requests
fan out through :class:`~repro.harness.ParallelRunner` and come back
variant-less but otherwise identical.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from ..lang import Program, ReproError, validate
from ..memsim import MACHINES, MachineConfig
from ..obs import RunLog, TraceConfig, make_event, spec_logging
from ..programs import registry
from ..verify import PassVerifier
from .cache import TraceCache
from .experiment import VariantResult, machine_for, measure_variant
from .parallel import ExperimentRecord, ExperimentSpec, ParallelRunner, progress_line


@dataclass(frozen=True)
class RunRequest:
    """Everything one experiment run needs, as a single value.

    ``program``
        a registry application name or a parsed/validated
        :class:`~repro.lang.Program`;
    ``levels``
        one level, a comma-separated string, or a sequence of levels;
    ``pipeline``
        compile through a specific pipeline instead of ``levels``: a
        registered pipeline name, a sequence of registered pass names,
        or a :class:`~repro.core.PipelineSpec`.  Custom (unnamed)
        pipelines run serially only;
    ``params`` / ``machine`` / ``steps``
        default to the registry entry's values (``machine`` also accepts
        a machine name, a :class:`~repro.programs.registry.MachineSpec`,
        or a built :class:`~repro.memsim.MachineConfig`);
    ``fusion_options`` / ``regroup_options`` / ``engine`` / ``verify``
        threaded to :func:`~repro.core.compile_variant` and the
        simulator exactly as their keyword twins there;
    ``cache``
        ``True`` (default directory), a path, or a
        :class:`~repro.harness.TraceCache`;
    ``jobs``
        1 = serial (default); ``None`` = one worker per CPU; n = that
        many workers (parallel runs need a registry ``program`` name);
    ``result_cache``
        ``False`` keeps the trace cache but always re-simulates;
    ``trace``
        observability sinks (:class:`~repro.obs.TraceConfig`).
    """

    program: Union[str, Program]
    levels: Union[str, Sequence[str]] = ("noopt",)
    pipeline: Optional[object] = None
    params: Optional[Mapping[str, int]] = None
    machine: Optional[Union[str, MachineConfig, object]] = None
    steps: Optional[int] = None
    name: Optional[str] = None
    fusion_options: Optional[object] = None
    regroup_options: Optional[object] = None
    #: engine spec per :func:`repro.engines.resolve_engines`, e.g.
    #: "fast", "codegen", or "reference+interp"
    engine: Optional[str] = None
    cache: Union[None, bool, str, Path, TraceCache] = None
    verify: Union[bool, PassVerifier] = False
    jobs: Optional[int] = 1
    result_cache: bool = True
    trace: Optional[TraceConfig] = None


@dataclass
class RunResult:
    """The outcome of one :func:`run` call."""

    request: RunRequest
    results: list[VariantResult]
    run_dir: Optional[Path] = None
    seconds: float = 0.0

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> VariantResult:
        return self.results[index]

    def rows(self) -> list[dict]:
        return [r.row() for r in self.results]

    def records(self) -> list[ExperimentRecord]:
        """Slim, picklable view (the old ``run_application`` shape)."""
        return [
            ExperimentRecord(
                program=r.program,
                level=r.level,
                params=dict(r.params),
                trace_length=r.trace_length,
                stats=r.stats,
                timings=dict(r.timings),
                seconds=r.seconds,
            )
            for r in self.results
        ]


def _resolve_levels(levels: Union[str, Sequence[str]]) -> list[str]:
    if isinstance(levels, str):
        return [lv for lv in levels.split(",") if lv]
    return list(levels)


def _resolve_cache(cache: Union[None, bool, str, Path, TraceCache]) -> Optional[TraceCache]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return TraceCache()
    if isinstance(cache, TraceCache):
        return cache
    return TraceCache(cache)


def _resolve_machine(machine, entry) -> MachineConfig:
    if isinstance(machine, MachineConfig):
        return machine
    if isinstance(machine, str):
        return MACHINES[machine]()
    if machine is not None:  # a MachineSpec-like object
        return machine_for(machine)
    if entry is not None:
        return machine_for(entry.machine_spec)
    from ..programs.registry import MachineSpec

    return machine_for(MachineSpec())


def run(request: RunRequest) -> RunResult:
    """Execute one experiment request; the single front door."""
    from ..core.pm import resolve_pipeline

    pipeline_spec = None
    if request.pipeline is not None:
        pipeline_spec = resolve_pipeline(request.pipeline)
        levels = [pipeline_spec.name]
    else:
        levels = _resolve_levels(request.levels)
        for level in levels:
            resolve_pipeline(level)  # strict: bogus names raise here
    if not levels:
        raise ReproError("RunRequest.levels is empty")
    cache = _resolve_cache(request.cache)

    if isinstance(request.program, str):
        entry = registry.get(request.program)
        program = validate(entry.build())
        name = request.name or request.program
        params = dict(request.params) if request.params is not None else dict(entry.default_params)
        steps = entry.steps if request.steps is None else request.steps
    else:
        entry = None
        program = request.program
        name = request.name or program.name
        if request.params is None:
            raise ReproError("RunRequest with a Program object requires params")
        params = dict(request.params)
        steps = 1 if request.steps is None else request.steps
    machine = _resolve_machine(request.machine, entry)

    parallel = request.jobs is None or request.jobs > 1
    if parallel and len(levels) > 1:
        if not isinstance(request.program, str):
            raise ReproError(
                "parallel runs (jobs != 1) need a registry application name; "
                "compiled variants do not cross process boundaries"
            )
        specs = [
            ExperimentSpec(
                app=request.program,
                level=level,
                params=params,
                steps=steps,
                machine=machine,
                fusion_options=request.fusion_options,
                regroup_options=request.regroup_options,
                engine=request.engine,
                cache_dir=str(cache.root) if cache is not None else None,
                verify=bool(request.verify),
                result_cache=request.result_cache,
            )
            for level in levels
        ]
        runner = ParallelRunner(jobs=request.jobs, trace=request.trace)
        t0 = time.perf_counter()
        records = runner.run(specs)
        results = [
            VariantResult(
                program=r.program,
                level=r.level,
                params=dict(r.params),
                stats=r.stats,
                variant=None,
                trace_length=r.trace_length,
                timings=dict(r.timings),
                seconds=r.seconds,
            )
            for r in records
        ]
        return RunResult(
            request,
            results,
            run_dir=runner.last_run_dir,
            seconds=time.perf_counter() - t0,
        )

    # serial path: full VariantResults, spans and metrics attached
    cfg = request.trace
    log = RunLog.create(cfg.runs_root, cfg.run_id) if cfg and cfg.events else None
    memory = bool(cfg and cfg.memory)
    progress = bool(cfg and cfg.progress)
    if log is not None:
        log.write(make_event("run_start", run_id=log.run_id, total=len(levels)))
    results = []
    slowest: Optional[VariantResult] = None
    t0 = time.perf_counter()
    for index, level in enumerate(levels):
        with spec_logging(log, index, name, level, memory=memory) as collector:
            result = measure_variant(
                program,
                level,
                params,
                machine,
                steps=steps,
                name=name,
                fusion_options=request.fusion_options,
                regroup_options=request.regroup_options,
                engine=request.engine,
                cache=cache,
                verify=request.verify,
                result_cache=request.result_cache,
                pipeline=pipeline_spec,
            )
        result.seconds = collector.seconds
        result.spans = collector.events
        result.metrics = collector.metrics
        results.append(result)
        if slowest is None or result.seconds > slowest.seconds:
            slowest = result
        if progress:
            print(
                progress_line(
                    len(results),
                    len(levels),
                    f"{result.program}/{result.level}",
                    result.seconds,
                    time.perf_counter() - t0,
                    f"{slowest.program}/{slowest.level}",
                    slowest.seconds,
                ),
                file=sys.stderr,
                flush=True,
            )
    seconds = time.perf_counter() - t0
    if log is not None:
        log.write(
            make_event(
                "run_end",
                run_id=log.run_id,
                completed=len(results),
                total=len(levels),
                seconds=round(seconds, 9),
                slowest={
                    "program": slowest.program,
                    "level": slowest.level,
                    "seconds": round(slowest.seconds, 9),
                },
            )
        )
    return RunResult(
        request,
        results,
        run_dir=log.run_dir if log is not None else None,
        seconds=seconds,
    )
