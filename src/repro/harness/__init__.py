"""Experiment drivers and table formatting shared by benchmarks/examples.

Everything enters through :func:`run` with a :class:`RunRequest`.  The
historical ``measure`` / ``measure_application`` / ``run_application``
trio is gone (v2.0); see the README migration table for the
``RunRequest`` equivalents.
"""

from .artifacts import merge_json_artifact
from .cache import TraceCache, default_cache_dir, layout_fingerprint
from .experiment import (
    VariantResult,
    machine_for,
    measure_variant,
    stage_timer,
    trace_for,
)
from .parallel import (
    ExperimentRecord,
    ExperimentSpec,
    ParallelRunner,
    progress_line,
    run_spec,
)
from .run import RunRequest, RunResult, run
from .sweep import SweepPoint, growth_factor, scaling_sweep
from .tables import (
    NORMALIZED_HEADERS,
    TIMING_HEADERS,
    TIMING_STAGES,
    format_table,
    geometric_mean,
    normalized_rows,
    ratio,
    timing_rows,
)

__all__ = [
    "ExperimentRecord",
    "ExperimentSpec",
    "NORMALIZED_HEADERS",
    "ParallelRunner",
    "RunRequest",
    "RunResult",
    "SweepPoint",
    "TIMING_HEADERS",
    "TIMING_STAGES",
    "TraceCache",
    "VariantResult",
    "default_cache_dir",
    "format_table",
    "geometric_mean",
    "layout_fingerprint",
    "machine_for",
    "measure_variant",
    "merge_json_artifact",
    "normalized_rows",
    "progress_line",
    "ratio",
    "growth_factor",
    "run",
    "run_spec",
    "scaling_sweep",
    "stage_timer",
    "timing_rows",
    "trace_for",
]
