"""Experiment drivers and table formatting shared by benchmarks/examples."""

from .cache import TraceCache, default_cache_dir, layout_fingerprint
from .experiment import (
    VariantResult,
    machine_for,
    measure,
    measure_application,
    stage_timer,
    trace_for,
)
from .parallel import (
    ExperimentRecord,
    ExperimentSpec,
    ParallelRunner,
    run_application,
    run_spec,
)
from .sweep import SweepPoint, growth_factor, scaling_sweep
from .tables import (
    NORMALIZED_HEADERS,
    TIMING_HEADERS,
    TIMING_STAGES,
    format_table,
    geometric_mean,
    normalized_rows,
    ratio,
    timing_rows,
)

__all__ = [
    "ExperimentRecord",
    "ExperimentSpec",
    "NORMALIZED_HEADERS",
    "ParallelRunner",
    "SweepPoint",
    "TIMING_HEADERS",
    "TIMING_STAGES",
    "TraceCache",
    "VariantResult",
    "default_cache_dir",
    "format_table",
    "geometric_mean",
    "layout_fingerprint",
    "machine_for",
    "measure",
    "measure_application",
    "normalized_rows",
    "ratio",
    "growth_factor",
    "run_application",
    "run_spec",
    "scaling_sweep",
    "stage_timer",
    "timing_rows",
    "trace_for",
]
