"""Experiment drivers and table formatting shared by benchmarks/examples."""

from .experiment import (
    VariantResult,
    machine_for,
    measure,
    measure_application,
    trace_for,
)
from .sweep import SweepPoint, growth_factor, scaling_sweep
from .tables import (
    NORMALIZED_HEADERS,
    format_table,
    geometric_mean,
    normalized_rows,
    ratio,
)

__all__ = [
    "NORMALIZED_HEADERS",
    "SweepPoint",
    "VariantResult",
    "format_table",
    "geometric_mean",
    "machine_for",
    "measure",
    "measure_application",
    "normalized_rows",
    "ratio",
    "growth_factor",
    "scaling_sweep",
    "trace_for",
]
