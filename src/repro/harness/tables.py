"""Plain-text table rendering for benchmark output.

The benchmarks print the same rows the paper's figures and tables report;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def normalized_rows(
    results: Sequence, base_level: str = "noopt"
) -> list[list[object]]:
    """Fig. 10-style rows: metrics normalized to the base level.

    When no result carries ``base_level`` (e.g. a custom ``--passes``
    pipeline), the first result becomes the base — its normalized
    columns read 1.00 and the rest are relative to it.
    """
    base = next((r for r in results if r.level == base_level), results[0])
    rows: list[list[object]] = []
    for r in results:
        norm = r.stats.normalized_to(base.stats)
        rows.append(
            [
                r.level,
                norm["time"],
                norm["l1"],
                norm["l2"],
                norm["tlb"],
                r.stats.l1_misses,
                r.stats.l2_misses,
                r.stats.tlb_misses,
            ]
        )
    return rows


NORMALIZED_HEADERS = (
    "level",
    "time/base",
    "L1/base",
    "L2/base",
    "TLB/base",
    "L1 misses",
    "L2 misses",
    "TLB misses",
)


#: Canonical stage order for :func:`timing_rows`.
TIMING_STAGES = (
    "compile", "trace-gen", "addresses", "l1", "l2", "tlb", "dram", "distance"
)

TIMING_HEADERS = ("level",) + TIMING_STAGES + ("total",)


def timing_rows(results: Sequence) -> list[list[object]]:
    """Per-stage wall-clock rows from results carrying a ``timings`` dict.

    Stages a result skipped (e.g. a cache hit never re-traces) render as
    ``-`` so a warm run is visibly cheaper than a cold one.
    """
    rows: list[list[object]] = []
    for r in results:
        timings = getattr(r, "timings", None) or {}
        row: list[object] = [r.level]
        for stage in TIMING_STAGES:
            row.append(timings[stage] if stage in timings else "-")
        row.append(sum(timings.values()))
        rows.append(row)
    return rows


def ratio(a: float, b: float) -> float:
    return a / b if b else (0.0 if a == 0 else float("inf"))


def geometric_mean(values: Sequence[float]) -> float:
    clean = [v for v in values if v > 0]
    if not clean:
        return 0.0
    prod = 1.0
    for v in clean:
        prod *= v
    return prod ** (1.0 / len(clean))


def summarize_counts(counts: Mapping[str, int]) -> str:
    return ", ".join(f"{k}={v:,}" for k, v in counts.items())
