"""Shared experiment driver used by benchmarks/ and examples/.

``measure`` takes an application (by registry name or as a program),
compiles it at an optimization level, generates the trace at the chosen
size, simulates the scaled memory hierarchy, and returns one
:class:`VariantResult` — the row unit of every Fig. 10 / §6 table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..core import CompiledVariant, compile_variant
from ..core.fusion import FusionOptions
from ..core.regroup import RegroupOptions
from ..interp import trace_program
from ..interp.trace import AccessTrace
from ..lang import Program, validate
from ..memsim import MACHINES, MachineConfig, MemStats, scaled_machine, simulate_hierarchy
from ..programs import registry


@dataclass
class VariantResult:
    """Everything measured for one (program, level) pair."""

    program: str
    level: str
    params: Mapping[str, int]
    stats: MemStats
    variant: CompiledVariant
    trace_length: int

    def row(self) -> dict:
        return {
            "program": self.program,
            "level": self.level,
            "accesses": self.stats.accesses,
            "l1": self.stats.l1_misses,
            "l2": self.stats.l2_misses,
            "tlb": self.stats.tlb_misses,
            "seconds": self.stats.seconds,
            "bytes": self.stats.data_transferred_bytes,
        }


def machine_for(spec) -> MachineConfig:
    """Build the scaled machine for a registry entry's MachineSpec."""
    if isinstance(spec, str):
        return MACHINES[spec]()
    base = MACHINES[spec.base]()
    return scaled_machine(
        base, spec.l1_bytes, spec.l2_bytes, spec.tlb_entries, spec.page_bytes
    )


def measure(
    program: Program,
    level: str,
    params: Mapping[str, int],
    machine: MachineConfig,
    steps: int = 1,
    name: Optional[str] = None,
    fusion_options: Optional[FusionOptions] = None,
    regroup_options: Optional[RegroupOptions] = None,
) -> VariantResult:
    """Compile at ``level``, trace, and simulate one program variant."""
    variant = compile_variant(
        program, level, fusion_options=fusion_options, regroup_options=regroup_options
    )
    validate(variant.program)
    trace = trace_program(variant.program, params, steps=steps)
    layout = variant.layout(params)
    stats = simulate_hierarchy(trace, layout, machine)
    return VariantResult(
        program=name or program.name,
        level=level,
        params=dict(params),
        stats=stats,
        variant=variant,
        trace_length=len(trace),
    )


def measure_application(
    app: str,
    levels: Sequence[str],
    params: Optional[Mapping[str, int]] = None,
    steps: Optional[int] = None,
    machine: Optional[MachineConfig] = None,
    fusion_options: Optional[FusionOptions] = None,
    regroup_options: Optional[RegroupOptions] = None,
) -> list[VariantResult]:
    """Measure a registry application at several optimization levels."""
    entry = registry.get(app)
    program = validate(entry.build())
    if machine is None:
        machine = machine_for(entry.machine_spec)
    out = []
    for level in levels:
        out.append(
            measure(
                program,
                level,
                params or entry.default_params,
                machine,
                steps=entry.steps if steps is None else steps,
                name=app,
                fusion_options=fusion_options,
                regroup_options=regroup_options,
            )
        )
    return out


def trace_for(
    app: str,
    level: str = "noopt",
    params: Optional[Mapping[str, int]] = None,
    steps: Optional[int] = None,
    with_instr: bool = False,
) -> AccessTrace:
    """Convenience: the access trace of an application at one level."""
    entry = registry.get(app)
    program = validate(entry.build())
    variant = compile_variant(program, level)
    return trace_program(
        variant.program,
        params or entry.default_params,
        steps=entry.steps if steps is None else steps,
        with_instr=with_instr,
    )
