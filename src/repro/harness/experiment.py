"""Shared experiment driver used by benchmarks/ and examples/.

:func:`measure_variant` takes an application (by registry name or as a
program), compiles it at an optimization level, generates the trace at
the chosen size, simulates the scaled memory hierarchy, and returns one
:class:`VariantResult` — the row unit of every Fig. 10 / §6 table.  The
whole path is instrumented with :mod:`repro.obs` spans (compile passes,
trace-gen, per-cache simulation stages), so a surrounding
:class:`~repro.obs.SpanCollector` sees the full stage tree.

The :func:`repro.harness.run` front door drives this module; the
historical ``measure`` / ``measure_application`` shims are gone.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from ..core import CompiledVariant, compile_pipeline, compile_variant
from ..core.fusion import FusionOptions
from ..engines import EngineSelection, resolve_engines
from ..core.regroup import RegroupOptions
from ..interp import trace_program
from ..interp.trace import AccessTrace
from ..lang import Program, validate
from ..memsim import (
    MACHINES,
    MachineConfig,
    MemStats,
    default_engine,
    scaled_machine,
    simulate_hierarchy,
    simulate_stream,
)
from ..obs import SpanEvent, metrics, span
from ..programs import registry
from ..stream import AddressStream
from ..verify import PassVerifier
from .cache import TraceCache, layout_fingerprint


@dataclass
class VariantResult:
    """Everything measured for one (program, level) pair."""

    program: str
    level: str
    params: Mapping[str, int]
    stats: MemStats
    variant: Optional[CompiledVariant]
    trace_length: int
    #: per-stage wall-clock seconds (trace-gen, addresses, l1, l2, tlb)
    timings: dict = field(default_factory=dict)
    #: wall-clock seconds of the whole measurement (filled by the runner)
    seconds: float = 0.0
    #: observability spans collected over the measurement (serial runs)
    spans: list[SpanEvent] = field(default_factory=list)
    #: metrics-registry delta observed over the measurement
    metrics: dict = field(default_factory=dict)

    def row(self) -> dict:
        return {
            "program": self.program,
            "level": self.level,
            "accesses": self.stats.accesses,
            "l1": self.stats.l1_misses,
            "l2": self.stats.l2_misses,
            "tlb": self.stats.tlb_misses,
            "seconds": self.stats.seconds,
            "bytes": self.stats.data_transferred_bytes,
        }


@contextmanager
def stage_timer(timings: dict, stage: str):
    """Accumulate a block's wall-clock seconds under ``timings[stage]``.

    The benchmark-side counterpart of the stages ``simulate_hierarchy``
    times internally — e.g. wrap an Olken ``reuse_distances`` pass with
    ``stage_timer(timings, "distance")`` to fill the timing table's
    ``distance`` column.  New code should prefer :func:`repro.obs.span`,
    which feeds the same numbers into structured events.
    """
    t0 = time.perf_counter()
    try:
        yield
    finally:
        timings[stage] = timings.get(stage, 0.0) + time.perf_counter() - t0


def _generate_trace(
    selection: EngineSelection,
    program: Program,
    params: Mapping[str, int],
    steps: int,
    timings: dict,
) -> AccessTrace:
    """Generate the trace with the selected tracer, under the pinned span.

    Both tracers produce bit-for-bit identical traces (the contract the
    differential suite under ``tests/codegen/`` enforces), so callers —
    and the trace cache — never observe which one ran except through the
    ``tracer`` span attribute and the ``codegen.*`` metrics.
    """
    with span("trace-gen", steps=steps, tracer=selection.tracer) as sp:
        if selection.tracer == "codegen":
            from ..codegen import trace_program as codegen_trace_program

            trace = codegen_trace_program(program, params, steps=steps)
        else:
            trace = trace_program(program, params, steps=steps)
    timings["trace-gen"] = sp.duration_s
    metrics.inc("trace.generated")
    metrics.inc("trace.accesses", len(trace))
    return trace


def machine_for(spec) -> MachineConfig:
    """Build the scaled machine for a registry entry's MachineSpec."""
    if isinstance(spec, str):
        return MACHINES[spec]()
    base = MACHINES[spec.base]()
    return scaled_machine(
        base, spec.l1_bytes, spec.l2_bytes, spec.tlb_entries, spec.page_bytes
    )


def measure_variant(
    program: Program,
    level: str,
    params: Mapping[str, int],
    machine: MachineConfig,
    steps: int = 1,
    name: Optional[str] = None,
    fusion_options: Optional[FusionOptions] = None,
    regroup_options: Optional[RegroupOptions] = None,
    engine: Union[None, str, EngineSelection] = None,
    cache: Optional[TraceCache] = None,
    verify: Union[bool, PassVerifier] = False,
    result_cache: bool = True,
    pipeline: Optional[object] = None,
) -> VariantResult:
    """Compile at ``level``, trace, and simulate one program variant.

    ``engine`` is a spec per :func:`repro.engines.resolve_engines`: a
    simulation engine (``"fast"``/``"reference"``), a tracer
    (``"codegen"``/``"interp"``), or both (``"fast+interp"``).  ``cache``
    replays address streams — and whole results, when the machine and
    simulation engine also match — from disk instead of re-tracing
    (tracers produce bit-identical traces, so trace/result entries are
    shared across them); ``result_cache=False``
    keeps the trace cache but always re-simulates (benchmarking).
    ``verify`` threads a pass-legality check through
    :func:`~repro.core.compile_variant` (True, or a
    :class:`~repro.verify.PassVerifier` whose history the caller wants).
    ``pipeline`` overrides ``level`` for compilation: a registered
    pipeline name, a pass-name sequence, or a
    :class:`~repro.core.PipelineSpec` (``level`` stays the row label).
    Per-stage seconds land in :attr:`VariantResult.timings`.
    """
    selection = resolve_engines(engine)
    engine = selection.sim
    timings: dict[str, float] = {}
    with span("compile", level=level) as sp:
        if pipeline is not None:
            variant = compile_pipeline(
                program,
                pipeline,
                fusion_options=fusion_options,
                regroup_options=regroup_options,
                verify=verify,
            )
        else:
            variant = compile_variant(
                program,
                level,
                fusion_options=fusion_options,
                regroup_options=regroup_options,
                verify=verify,
            )
    timings["compile"] = sp.duration_s
    validate(variant.program)
    layout = variant.layout(params)

    def _result(stats: MemStats, trace_length: int) -> VariantResult:
        return VariantResult(
            program=name or program.name,
            level=level,
            params=dict(params),
            stats=stats,
            variant=variant,
            trace_length=trace_length,
            timings=timings,
        )

    if cache is not None:
        tkey = cache.trace_key(
            str(variant.program), params, steps, layout_fingerprint(layout)
        )
        rkey = cache.result_key(tkey, machine, engine)
        if result_cache:
            stats = cache.load_result(rkey)
            if stats is not None:
                return _result(stats, stats.accesses)
        stream = cache.load_trace(tkey)
        if stream is None:
            trace = _generate_trace(selection, variant.program, params, steps, timings)
            with span("addresses") as sp:
                stream = AddressStream.from_trace(
                    trace,
                    layout,
                    name=name or program.name,
                    source=selection.tracer,
                )
            timings["addresses"] = sp.duration_s
            cache.store_trace(tkey, stream)
        stats = simulate_stream(stream, machine, engine=engine, timings=timings)
        if result_cache:
            cache.store_result(rkey, stats)
        return _result(stats, len(stream))

    trace = _generate_trace(selection, variant.program, params, steps, timings)
    stats = simulate_hierarchy(
        trace, layout, machine, engine=engine, timings=timings
    )
    return _result(stats, len(trace))


def trace_for(
    app: str,
    level: str = "noopt",
    params: Optional[Mapping[str, int]] = None,
    steps: Optional[int] = None,
    with_instr: bool = False,
) -> AccessTrace:
    """Convenience: the access trace of an application at one level."""
    entry = registry.get(app)
    program = validate(entry.build())
    variant = compile_variant(program, level)
    return trace_program(
        variant.program,
        params or entry.default_params,
        steps=entry.steps if steps is None else steps,
        with_instr=with_instr,
    )
