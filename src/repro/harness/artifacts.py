"""Machine-readable benchmark artifacts (the committed ``BENCH_*.json``).

Every benchmark CLI that supports ``--json-out`` appends to a committed
artifact rather than overwriting it, so partial refreshes compose: tune
one program and the other programs' entries survive (the pattern `make
bench-tune` relies on — sp is refreshed by a separate, cheaper
invocation).  :func:`merge_json_artifact` is that read-merge-rewrite in
one place.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Optional, Union


def merge_json_artifact(
    path: Union[str, Path],
    records: Mapping[str, object],
    header: Optional[Mapping[str, object]] = None,
    *,
    key: str = "programs",
) -> dict[str, object]:
    """Merge keyed ``records`` into the JSON artifact at ``path``.

    Loads the existing artifact's ``key`` mapping (a missing, empty, or
    non-JSON file starts fresh), overwrites entries whose key appears in
    ``records``, keeps every other committed entry, and rewrites the
    file as the ``header`` fields plus the merged mapping under ``key``,
    sorted for stable diffs.  Returns the merged mapping.
    """
    out_path = Path(path)
    existing: dict[str, object] = {}
    if out_path.exists():
        try:
            existing = dict(json.loads(out_path.read_text()).get(key, {}))
        except (ValueError, AttributeError):
            existing = {}
    existing.update(records)
    merged = dict(sorted(existing.items()))
    payload: dict[str, object] = dict(header or {})
    payload[key] = merged
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return merged
