"""Input-size scaling sweeps.

The paper's central diagnostic is how locality scales with the input:
evadable reuses are the ones that turn into misses once the data outgrows
the cache.  ``scaling_sweep`` measures an application across input sizes
at fixed machine configuration, exposing exactly that: the original
program's per-access miss rate climbs with N, while the optimized
program's stays near its floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..lang import validate
from ..memsim import MachineConfig
from ..programs import registry
from .experiment import machine_for, measure_variant


@dataclass(frozen=True)
class SweepPoint:
    """One (size, level) measurement of per-access miss rates."""

    n: int
    level: str
    accesses: int
    l1_rate: float
    l2_rate: float
    tlb_rate: float
    bytes_per_access: float


def scaling_sweep(
    app: str,
    levels: Sequence[str],
    sizes: Sequence[int],
    machine: Optional[MachineConfig] = None,
    steps: Optional[int] = None,
) -> list[SweepPoint]:
    """Measure an application across input sizes at a fixed machine."""
    entry = registry.get(app)
    program = validate(entry.build())
    if machine is None:
        machine = machine_for(entry.machine_spec)
    out: list[SweepPoint] = []
    for level in levels:
        for n in sizes:
            result = measure_variant(
                program,
                level,
                {"N": n},
                machine,
                steps=entry.steps if steps is None else steps,
                name=app,
            )
            s = result.stats
            out.append(
                SweepPoint(
                    n=n,
                    level=level,
                    accesses=s.accesses,
                    l1_rate=s.l1_miss_rate,
                    l2_rate=s.l2_miss_rate,
                    tlb_rate=s.tlb_miss_rate,
                    bytes_per_access=s.data_transferred_bytes / max(s.accesses, 1),
                )
            )
    return out


def growth_factor(points: Sequence[SweepPoint], level: str, metric: str = "l2_rate") -> float:
    """Ratio of the metric at the largest vs smallest size for one level."""
    series = sorted((p for p in points if p.level == level), key=lambda p: p.n)
    if len(series) < 2:
        return 1.0
    first = getattr(series[0], metric)
    last = getattr(series[-1], metric)
    return last / first if first else float("inf")
