"""Parallel experiment execution with deterministic result ordering.

A benchmark is a list of independent (program, level, size) experiments;
:class:`ParallelRunner` fans them out across worker processes with
``multiprocessing.Pool.imap`` (``chunksize=1``), which yields results in
input order, so a parallel run returns *bit-identical* records in the
*same order* as a serial run — the property the integration tests pin.

Experiments cross the process boundary as :class:`ExperimentSpec`
records (registry name + plain-data options), not as compiled variants:
a :class:`~repro.core.CompiledVariant` carries layout closures that do
not pickle.  Results come back as the equally-slim
:class:`ExperimentRecord`.  Both directions compose with the on-disk
:class:`~repro.harness.cache.TraceCache`, so workers share traces
through the filesystem rather than re-tracing per process.

Observability: given a :class:`~repro.obs.TraceConfig` with
``events=True``, the runner creates ``runs/<id>/events.jsonl`` and every
worker streams its spec's span/metric events into it (schema v1, see
:mod:`repro.obs.events`); ``progress=True`` additionally reports
completed/total, ETA, and the slowest spec live as results arrive.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..core.fusion import FusionOptions
from ..core.regroup import RegroupOptions
from ..memsim import MachineConfig, MemStats
from ..obs import RunLog, TraceConfig, make_event, spec_logging


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, as plain picklable data.

    ``app`` names a registry application; ``params``/``steps``/``machine``
    default to the registry entry's values when omitted.  ``cache_dir``
    (a path) enables the on-disk trace/result cache for this experiment;
    ``verify`` runs the pass-legality checker during compilation;
    ``result_cache=False`` replays traces but always re-simulates.
    """

    app: str
    level: str
    params: Optional[Mapping[str, int]] = None
    steps: Optional[int] = None
    machine: Optional[MachineConfig] = None
    fusion_options: Optional[FusionOptions] = None
    regroup_options: Optional[RegroupOptions] = None
    engine: Optional[str] = None
    cache_dir: Optional[str] = None
    verify: bool = False
    result_cache: bool = True


@dataclass(frozen=True)
class ExperimentRecord:
    """The measured outcome of one spec (slim, picklable)."""

    program: str
    level: str
    params: dict
    trace_length: int
    stats: MemStats
    timings: dict = field(default_factory=dict)
    #: wall-clock seconds the spec took in its worker
    seconds: float = 0.0


def run_spec(spec: ExperimentSpec) -> ExperimentRecord:
    """Execute one spec (module-level so worker processes can import it)."""
    from .cache import TraceCache
    from .experiment import machine_for, measure_variant
    from ..lang import validate
    from ..programs import registry

    entry = registry.get(spec.app)
    program = validate(entry.build())
    machine = spec.machine if spec.machine is not None else machine_for(
        entry.machine_spec
    )
    result = measure_variant(
        program,
        spec.level,
        dict(spec.params) if spec.params is not None else entry.default_params,
        machine,
        steps=entry.steps if spec.steps is None else spec.steps,
        name=spec.app,
        fusion_options=spec.fusion_options,
        regroup_options=spec.regroup_options,
        engine=spec.engine,
        cache=TraceCache(spec.cache_dir) if spec.cache_dir else None,
        verify=spec.verify,
        result_cache=spec.result_cache,
    )
    return ExperimentRecord(
        program=result.program,
        level=result.level,
        params=dict(result.params),
        trace_length=result.trace_length,
        stats=result.stats,
        timings=dict(result.timings),
    )


def _logged_spec(job: tuple) -> ExperimentRecord:
    """Worker entry: run one spec, streaming its events to the run log."""
    spec, run_dir, index, memory = job
    log = RunLog(run_dir) if run_dir else None
    with spec_logging(log, index, spec.app, spec.level, memory=memory) as collector:
        record = run_spec(spec)
    return dataclasses.replace(record, seconds=collector.seconds)


def progress_line(
    completed: int,
    total: int,
    label: str,
    seconds: float,
    elapsed: float,
    slowest_label: str,
    slowest_seconds: float,
) -> str:
    """One live progress report: completed/total, ETA, slowest spec."""
    remaining = total - completed
    eta = (elapsed / completed) * remaining if completed else 0.0
    return (
        f"[{completed}/{total}] {label} {seconds:.2f}s | "
        f"elapsed {elapsed:.1f}s | ETA {eta:.1f}s | "
        f"slowest {slowest_label} {slowest_seconds:.2f}s"
    )


class ParallelRunner:
    """Run experiment specs across processes, results in input order.

    ``trace`` configures the observability sinks for the whole run; after
    :meth:`run` with events enabled, ``last_run_dir`` points at the run
    directory holding ``events.jsonl``.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        trace: Optional[TraceConfig] = None,
        progress_stream=None,
    ) -> None:
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.trace = trace
        self.progress_stream = progress_stream
        self.last_run_dir = None

    def run(self, specs: Sequence[ExperimentSpec]) -> list[ExperimentRecord]:
        specs = list(specs)
        cfg = self.trace
        log: Optional[RunLog] = None
        if cfg is not None and cfg.events:
            log = RunLog.create(cfg.runs_root, cfg.run_id)
            self.last_run_dir = log.run_dir
            log.write(make_event("run_start", run_id=log.run_id, total=len(specs)))
        memory = bool(cfg and cfg.memory)
        progress = bool(cfg and cfg.progress)
        stream = self.progress_stream if self.progress_stream is not None else sys.stderr
        run_dir = str(log.run_dir) if log is not None else None
        jobs = [(spec, run_dir, i, memory) for i, spec in enumerate(specs)]

        records: list[ExperimentRecord] = []
        slowest: Optional[ExperimentRecord] = None
        t0 = time.perf_counter()

        def consume(record: ExperimentRecord) -> None:
            nonlocal slowest
            records.append(record)
            if slowest is None or record.seconds > slowest.seconds:
                slowest = record
            if progress:
                print(
                    progress_line(
                        len(records),
                        len(specs),
                        f"{record.program}/{record.level}",
                        record.seconds,
                        time.perf_counter() - t0,
                        f"{slowest.program}/{slowest.level}",
                        slowest.seconds,
                    ),
                    file=stream,
                    flush=True,
                )

        if self.jobs <= 1 or len(specs) <= 1:
            for job in jobs:
                consume(_logged_spec(job))
        else:
            # fork keeps the already-imported interpreter state; imap with
            # chunksize=1 yields in input order as soon as each completes.
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(min(self.jobs, len(specs))) as pool:
                for record in pool.imap(_logged_spec, jobs, chunksize=1):
                    consume(record)

        if log is not None:
            extra = {}
            if slowest is not None:
                extra["slowest"] = {
                    "program": slowest.program,
                    "level": slowest.level,
                    "seconds": round(slowest.seconds, 9),
                }
            log.write(
                make_event(
                    "run_end",
                    run_id=log.run_id,
                    completed=len(records),
                    total=len(specs),
                    seconds=round(time.perf_counter() - t0, 9),
                    **extra,
                )
            )
        return records
