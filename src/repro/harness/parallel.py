"""Parallel experiment execution with deterministic result ordering.

A benchmark is a list of independent (program, level, size) experiments;
:class:`ParallelRunner` fans them out across worker processes with
``multiprocessing.Pool.map``, which preserves input order, so a parallel
run returns *bit-identical* records in the *same order* as a serial run
— the property the integration tests pin.

Experiments cross the process boundary as :class:`ExperimentSpec`
records (registry name + plain-data options), not as compiled variants:
a :class:`~repro.core.CompiledVariant` carries layout closures that do
not pickle.  Results come back as the equally-slim
:class:`ExperimentRecord`.  Both directions compose with the on-disk
:class:`~repro.harness.cache.TraceCache`, so workers share traces
through the filesystem rather than re-tracing per process.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..core.fusion import FusionOptions
from ..core.regroup import RegroupOptions
from ..memsim import MachineConfig, MemStats


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, as plain picklable data.

    ``app`` names a registry application; ``params``/``steps``/``machine``
    default to the registry entry's values when omitted.  ``cache_dir``
    (a path) enables the on-disk trace/result cache for this experiment.
    """

    app: str
    level: str
    params: Optional[Mapping[str, int]] = None
    steps: Optional[int] = None
    machine: Optional[MachineConfig] = None
    fusion_options: Optional[FusionOptions] = None
    regroup_options: Optional[RegroupOptions] = None
    engine: Optional[str] = None
    cache_dir: Optional[str] = None


@dataclass(frozen=True)
class ExperimentRecord:
    """The measured outcome of one spec (slim, picklable)."""

    program: str
    level: str
    params: dict
    trace_length: int
    stats: MemStats
    timings: dict = field(default_factory=dict)


def run_spec(spec: ExperimentSpec) -> ExperimentRecord:
    """Execute one spec (module-level so worker processes can import it)."""
    from .cache import TraceCache
    from .experiment import machine_for, measure
    from ..lang import validate
    from ..programs import registry

    entry = registry.get(spec.app)
    program = validate(entry.build())
    machine = spec.machine if spec.machine is not None else machine_for(
        entry.machine_spec
    )
    result = measure(
        program,
        spec.level,
        dict(spec.params) if spec.params is not None else entry.default_params,
        machine,
        steps=entry.steps if spec.steps is None else spec.steps,
        name=spec.app,
        fusion_options=spec.fusion_options,
        regroup_options=spec.regroup_options,
        engine=spec.engine,
        cache=TraceCache(spec.cache_dir) if spec.cache_dir else None,
    )
    return ExperimentRecord(
        program=result.program,
        level=result.level,
        params=dict(result.params),
        trace_length=result.trace_length,
        stats=result.stats,
        timings=dict(result.timings),
    )


class ParallelRunner:
    """Run experiment specs across processes, results in input order."""

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)

    def run(self, specs: Sequence[ExperimentSpec]) -> list[ExperimentRecord]:
        specs = list(specs)
        if self.jobs <= 1 or len(specs) <= 1:
            return [run_spec(s) for s in specs]
        # fork keeps the already-imported interpreter state; Pool.map
        # preserves ordering regardless of completion order.
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(min(self.jobs, len(specs))) as pool:
            return pool.map(run_spec, specs)


def run_application(
    app: str,
    levels: Sequence[str],
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    engine: Optional[str] = None,
    **spec_kwargs,
) -> list[ExperimentRecord]:
    """Measure ``app`` at several levels via the parallel runner.

    Drop-in shape for the benchmarks' ``measure_application`` loops: one
    record per level, in the order given.
    """
    specs = [
        ExperimentSpec(
            app=app,
            level=level,
            engine=engine,
            cache_dir=cache_dir,
            **spec_kwargs,
        )
        for level in levels
    ]
    return ParallelRunner(jobs=jobs).run(specs)
