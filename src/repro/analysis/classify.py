"""Classification of subscripts relative to a fusion frame.

Loop fusion at one level reasons about every array subscript relative to
the loop index being fused (the *frame variable*).  Following the paper's
input assumptions (Fig. 5), a subscript is:

* **variant** — ``frame + c`` with ``c`` affine in parameters (the paper's
  ``A[i + k]`` form);
* **invariant** — a fixed point, affine in parameters only (``A[k]``,
  typically a bordering element);
* **inner** — traversed by an inner loop (the whole dimension from the
  frame's point of view; arises when fusing the outer level of
  multi-dimensional loops);
* **complex** — anything else (non-unit coefficient on the frame, mixed
  indices).  Complex subscripts make a pair infusible, exactly as the
  paper's restrictions demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Union

from ..lang import Affine


class DimKind(Enum):
    VARIANT = "variant"
    INVARIANT = "invariant"
    INNER = "inner"
    COMPLEX = "complex"


@dataclass(frozen=True)
class DimClass:
    """Classification of one subscript dimension."""

    kind: DimKind
    #: VARIANT: the offset c in ``frame + c``; INVARIANT: the fixed point.
    value: Union[Affine, None] = None
    #: INNER: the inner variables the subscript depends on.
    inner_vars: frozenset[str] = frozenset()

    @staticmethod
    def variant(offset: Affine) -> "DimClass":
        return DimClass(DimKind.VARIANT, offset)

    @staticmethod
    def invariant(point: Affine) -> "DimClass":
        return DimClass(DimKind.INVARIANT, point)

    @staticmethod
    def inner(names: Iterable[str]) -> "DimClass":
        return DimClass(DimKind.INNER, None, frozenset(names))

    @staticmethod
    def complex_() -> "DimClass":
        return DimClass(DimKind.COMPLEX)

    def __str__(self) -> str:
        if self.kind is DimKind.VARIANT:
            sign = "" if str(self.value).startswith("-") else "+"
            return f"i{sign}{self.value}"
        if self.kind is DimKind.INVARIANT:
            return f"@{self.value}"
        if self.kind is DimKind.INNER:
            return f"inner({','.join(sorted(self.inner_vars))})"
        return "complex"


def classify_subscript(
    subscript: Affine, frame: str, inner_vars: frozenset[str], params: frozenset[str]
) -> DimClass:
    """Classify one subscript affine form relative to ``frame``.

    ``inner_vars`` are loop indices nested inside the frame; any other
    variable must be a parameter (outer indices are already substituted or
    treated as parameters by the caller).
    """
    coeff = subscript.coeff(frame)
    used_inner = subscript.variables() & inner_vars
    if coeff == 1 and not used_inner:
        return DimClass.variant(subscript - Affine.var(frame))
    if coeff == 0:
        if used_inner:
            return DimClass.inner(used_inner)
        unknown = subscript.variables() - params
        if unknown:
            return DimClass.complex_()
        return DimClass.invariant(subscript)
    return DimClass.complex_()
