"""Frame-relative access collection — the paper's *data footprints* (§4.1).

``collect_accesses`` walks a loop body and produces one
:class:`RefAccess` per array reference, classified relative to the frame
variable and annotated with the active range of frame values for which it
executes (narrowed through :class:`Guard` statements).  Fusion's
``FusibleTest``, statement embedding, and data regrouping all consume
this summary; dependence is tested by intersecting footprints, exactly as
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from ..lang import (
    Affine,
    AnalysisError,
    ArrayRef,
    Assign,
    CallStmt,
    Guard,
    Loop,
    ScalarRef,
    Stmt,
    array_reads,
)
from .classify import DimClass, DimKind, classify_subscript

#: Pseudo-array name prefix for scalar variables, so scalar flow
#: participates in data-sharing and dependence tests uniformly.
SCALAR_PREFIX = "$scalar:"


@dataclass(frozen=True)
class RefAccess:
    """One array reference, classified relative to a fusion frame.

    ``active_lo``/``active_hi`` bound the frame values at which the
    reference executes (loop bounds narrowed by enclosing guards); for
    references not under the frame at all (loose statements) they are the
    single point of execution or ``None`` when unconstrained.
    """

    array: str
    is_write: bool
    dims: tuple[DimClass, ...]
    active_lo: Optional[Affine]
    active_hi: Optional[Affine]
    text: str = ""

    def is_variant(self) -> bool:
        return any(d.kind is DimKind.VARIANT for d in self.dims)

    def has_complex(self) -> bool:
        return any(d.kind is DimKind.COMPLEX for d in self.dims)

    def shifted(self, shift: Affine) -> "RefAccess":
        """Translate from a member frame into the fused frame.

        A member aligned by ``shift`` executes its iteration ``i`` at
        fused position ``f = i + shift``; a variant subscript ``i + c``
        becomes ``f + (c - shift)`` and active ranges move with it.
        """
        dims = tuple(
            DimClass.variant(d.value - shift) if d.kind is DimKind.VARIANT else d
            for d in self.dims
        )
        return replace(
            self,
            dims=dims,
            active_lo=None if self.active_lo is None else self.active_lo + shift,
            active_hi=None if self.active_hi is None else self.active_hi + shift,
        )


def _scalar_access(name: str, is_write: bool) -> RefAccess:
    return RefAccess(
        array=SCALAR_PREFIX + name,
        is_write=is_write,
        dims=(DimClass.invariant(Affine.constant(0)),),
        active_lo=None,
        active_hi=None,
        text=name,
    )


class _Collector:
    def __init__(self, frame: Optional[str], params: frozenset[str]) -> None:
        self.frame = frame
        self.params = params
        self.out: list[RefAccess] = []

    def ref(
        self,
        ref: ArrayRef,
        is_write: bool,
        inner: frozenset[str],
        lo: Optional[Affine],
        hi: Optional[Affine],
    ) -> None:
        if self.frame is None:
            # loose statement: everything is invariant or complex
            dims = []
            for sub in ref.index_affines():
                unknown = sub.variables() - self.params
                dims.append(
                    DimClass.invariant(sub) if not unknown else DimClass.complex_()
                )
            dims = tuple(dims)
        else:
            dims = tuple(
                classify_subscript(sub, self.frame, inner, self.params)
                for sub in ref.index_affines()
            )
        self.out.append(
            RefAccess(ref.array, is_write, dims, lo, hi, text=str(ref))
        )

    def stmt(
        self,
        stmt: Stmt,
        inner: frozenset[str],
        lo: Optional[Affine],
        hi: Optional[Affine],
    ) -> None:
        if isinstance(stmt, Assign):
            for r in array_reads(stmt.expr):
                self.ref(r, False, inner, lo, hi)
            for node in stmt.expr.walk():
                if isinstance(node, ScalarRef):
                    self.out.append(_scalar_access(node.name, False))
            if isinstance(stmt.target, ArrayRef):
                self.ref(stmt.target, True, inner, lo, hi)
            else:
                self.out.append(_scalar_access(stmt.target.name, True))
        elif isinstance(stmt, Loop):
            self.body(stmt.body, inner | {stmt.index}, lo, hi)
        elif isinstance(stmt, Guard):
            if (
                self.frame is not None
                and stmt.index == self.frame
                and len(stmt.intervals) == 1
            ):
                iv = stmt.intervals[0]
                self.body(stmt.body, inner, iv.lower, iv.upper)
                # the complement of an interval is not an interval; stay
                # conservative for the else branch
                if stmt.else_body:
                    self.body(stmt.else_body, inner, lo, hi)
            else:
                self.body(stmt.body, inner, lo, hi)
                self.body(stmt.else_body, inner, lo, hi)
        elif isinstance(stmt, CallStmt):
            raise AnalysisError(
                f"footprint analysis requires inlined programs (call {stmt.proc!r})"
            )
        else:
            raise AnalysisError(f"cannot analyze {type(stmt).__name__}")

    def body(
        self,
        body: Sequence[Stmt],
        inner: frozenset[str],
        lo: Optional[Affine],
        hi: Optional[Affine],
    ) -> None:
        for stmt in body:
            self.stmt(stmt, inner, lo, hi)


def collect_loop_accesses(loop: Loop, params: Sequence[str]) -> list[RefAccess]:
    """Accesses of a loop, classified relative to its own index."""
    col = _Collector(loop.index, frozenset(params))
    col.body(loop.body, frozenset(), loop.lower.affine(), loop.upper.affine())
    return col.out


def collect_stmt_accesses(stmt: Stmt, params: Sequence[str]) -> list[RefAccess]:
    """Accesses of a loose (non-loop) statement: frame-free."""
    col = _Collector(None, frozenset(params))
    col.stmt(stmt, frozenset(), None, None)
    return col.out


def arrays_of(accesses: Sequence[RefAccess], include_scalars: bool = True) -> frozenset[str]:
    names = (
        a.array
        for a in accesses
        if include_scalars or not a.array.startswith(SCALAR_PREFIX)
    )
    return frozenset(names)


def shares_data(a: Sequence[RefAccess], b: Sequence[RefAccess]) -> bool:
    """True when the two access sets touch any common array (or scalar).

    This is the paper's "shares data" test in ``GreedilyFuse``: the search
    for the closest data-sharing predecessor.  Read-read sharing counts —
    it is a fusion *opportunity* — which also guarantees that statements
    skipped over by the backward search share nothing and are safe to be
    overtaken.
    """
    return bool(arrays_of(a) & arrays_of(b))
