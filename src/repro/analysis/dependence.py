"""Statement-level dependence testing.

Two views are provided:

* ``depends(a, b)`` — do two access sets conflict at all (>= 1 write on a
  common array, footprints intersect)?  Used by ``GreedilyFuse`` legality
  arguments and the baselines.
* ``body_dependence_graph`` — directed dependence graph between the
  statements of one loop body, with loop-carried direction resolved where
  the iteration coupling is a known constant.  Loop distribution keeps the
  strongly connected components of this graph together (the classic
  Allen–Kennedy condition).
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from ..lang import DEFAULT_PARAM_MIN, Loop, Stmt
from .access import RefAccess, collect_loop_accesses, collect_stmt_accesses
from .constraint import Conflict, ConflictKind, pair_conflict


def depends(
    acc1: Sequence[RefAccess],
    acc2: Sequence[RefAccess],
    param_min: int = DEFAULT_PARAM_MIN,
) -> bool:
    """True when the two access sets have any conflicting (dep) pair."""
    by_array: dict[str, list[RefAccess]] = {}
    for r in acc2:
        by_array.setdefault(r.array, []).append(r)
    for r1 in acc1:
        for r2 in by_array.get(r1.array, ()):
            if not (r1.is_write or r2.is_write):
                continue
            if pair_conflict(r1, r2, param_min) is not None:
                return True
    return False


def _edge_directions(
    conflict: Conflict, param_min: int = DEFAULT_PARAM_MIN
) -> tuple[bool, bool]:
    """(forward a->b, backward b->a) directions implied by one conflict.

    ``a`` precedes ``b`` in the loop body.  For a constant iteration
    coupling ``u_b = u_a + delta`` (bound = -delta): delta >= 0 means the
    dependence flows a->b (same or later iteration); delta < 0 flows b->a
    (b's conflicting instance ran in an earlier iteration).  Everything
    else is treated bidirectionally — conservative, which for distribution
    only means keeping statements together.
    """
    if conflict.kind is ConflictKind.DELTA and conflict.bound is not None:
        if conflict.bound.is_constant():
            neg_delta = conflict.bound.int_value()  # bound = -delta
            delta = -neg_delta
            if delta >= 0:
                return True, False
            return False, True
    return True, True


def body_dependence_graph(
    loop: Loop, params: Sequence[str], param_min: int = DEFAULT_PARAM_MIN
) -> nx.DiGraph:
    """Dependence graph over the direct statements of ``loop``'s body.

    Node ``k`` is ``loop.body[k]``; an edge u -> v means v must not move
    before u.
    """
    accesses: list[list[RefAccess]] = []
    for stmt in loop.body:
        if isinstance(stmt, Loop):
            inner = collect_loop_accesses(stmt, params)
            # re-classify relative to the outer frame: treat the inner loop
            # as a statement of the outer body
            outer = Loop(loop.index, loop.lower, loop.upper, (stmt,))
            accesses.append(collect_loop_accesses(outer, params))
        else:
            outer = Loop(loop.index, loop.lower, loop.upper, (stmt,))
            accesses.append(collect_loop_accesses(outer, params))
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(loop.body)))
    for a in range(len(loop.body)):
        for b in range(a + 1, len(loop.body)):
            fwd = bwd = False
            by_array: dict[str, list[RefAccess]] = {}
            for r in accesses[b]:
                by_array.setdefault(r.array, []).append(r)
            for r1 in accesses[a]:
                for r2 in by_array.get(r1.array, ()):
                    if not (r1.is_write or r2.is_write):
                        continue
                    c = pair_conflict(r1, r2, param_min)
                    if c is None:
                        continue
                    f, w = _edge_directions(c, param_min)
                    fwd = fwd or f
                    bwd = bwd or w
                    if fwd and bwd:
                        break
                if fwd and bwd:
                    break
            if fwd:
                graph.add_edge(a, b)
            if bwd:
                graph.add_edge(b, a)
    return graph


def item_accesses(stmt: Stmt, params: Sequence[str]) -> list[RefAccess]:
    """Frame-appropriate accesses for a top-level program item."""
    if isinstance(stmt, Loop):
        return collect_loop_accesses(stmt, params)
    return collect_stmt_accesses(stmt, params)


def items_depend(
    a: Stmt, b: Stmt, params: Sequence[str], param_min: int = DEFAULT_PARAM_MIN
) -> bool:
    """Dependence between two top-level program items."""
    return depends(item_accesses(a, params), item_accesses(b, params), param_min)
