"""Embedding-point computation for statement embedding (paper §2.3).

Statement embedding schedules a non-loop statement into one iteration of a
(fused) loop.  ``GreedilyFuse`` moves a *later* statement S up into its
closest data-sharing predecessor loop U, so S executes at some fused
iteration ``t`` instead of after the whole loop; dependence requires every
conflicting instance of U to execute no later than ``t``.  The symmetric
case (an earlier statement absorbed by a later loop) bounds ``t`` from
above instead.

The returned embedding point is an affine form — boundary statements such
as ``A[1] = A[N]`` may need to run at iteration ``N`` — which the fused
loop's segmented code generation turns into peeled straight-line code,
just like the paper's Fig. 4(a) output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..lang import Affine, DEFAULT_PARAM_MIN
from .access import RefAccess
from .constraint import ConflictKind, pair_conflict, symbolic_max, symbolic_min


@dataclass(frozen=True)
class EmbedPoint:
    """Result of an embedding feasibility test."""

    ok: bool
    #: iteration to embed at; None with ok=True means "unconstrained".
    at: Optional[Affine] = None
    reason: str = ""


def embed_after(
    unit_accesses: Sequence[RefAccess],
    stmt_accesses: Sequence[RefAccess],
    param_min: int = DEFAULT_PARAM_MIN,
) -> EmbedPoint:
    """Embedding point for a statement that *follows* the unit.

    Moving S earlier (into iteration ``t``) requires every conflicting unit
    instance to be at an iteration <= t; read-read sharing prefers the
    iteration that touches the same element, for closest reuse.
    """
    required: list[Affine] = []
    preferred: list[Affine] = []
    for r1 in unit_accesses:
        for r2 in stmt_accesses:
            c = pair_conflict(r1, r2, param_min)
            if c is None:
                continue
            if c.kind is ConflictKind.PIN1 and c.pin1 is not None:
                (required if c.is_required else preferred).append(c.pin1)
            elif c.is_required:
                # the whole active range of r1 conflicts
                if r1.active_hi is None:
                    return EmbedPoint(False, reason=f"unbounded conflict on {r1.array}")
                required.append(r1.active_hi)
    point = symbolic_max(required + preferred, param_min)
    if point is None and (required or preferred):
        return EmbedPoint(False, reason="incomparable embedding constraints")
    return EmbedPoint(True, at=point)


def embed_before(
    stmt_accesses: Sequence[RefAccess],
    unit_accesses: Sequence[RefAccess],
    param_min: int = DEFAULT_PARAM_MIN,
) -> EmbedPoint:
    """Embedding point for a statement that *precedes* the unit.

    Moving S later (into iteration ``t``) requires every conflicting unit
    instance to be at an iteration >= t.
    """
    required: list[Affine] = []
    preferred: list[Affine] = []
    for r1 in stmt_accesses:
        for r2 in unit_accesses:
            c = pair_conflict(r1, r2, param_min)
            if c is None:
                continue
            if c.kind is ConflictKind.PIN2 and c.pin2 is not None:
                (required if c.is_required else preferred).append(c.pin2)
            elif c.is_required:
                if r2.active_lo is None:
                    return EmbedPoint(False, reason=f"unbounded conflict on {r2.array}")
                required.append(r2.active_lo)
    point = symbolic_min(required + preferred, param_min)
    if point is None and (required or preferred):
        return EmbedPoint(False, reason="incomparable embedding constraints")
    return EmbedPoint(True, at=point)
