"""Program analyses: footprints, dependence, alignment, embedding."""

from .access import (
    SCALAR_PREFIX,
    RefAccess,
    arrays_of,
    collect_loop_accesses,
    collect_stmt_accesses,
    shares_data,
)
from .classify import DimClass, DimKind, classify_subscript
from .constraint import (
    AlignmentResult,
    Conflict,
    ConflictKind,
    compute_alignment,
    pair_conflict,
    symbolic_max,
    symbolic_min,
)
from .dependence import (
    body_dependence_graph,
    depends,
    item_accesses,
    items_depend,
)
from .embedding import EmbedPoint, embed_after, embed_before
from .manager import (
    ANALYSIS_KINDS,
    AnalysisManager,
    analysis_scope,
    cached_parallelism,
    cached_static_reuse,
    current_analysis_manager,
)

__all__ = [
    "ANALYSIS_KINDS",
    "AlignmentResult",
    "AnalysisManager",
    "analysis_scope",
    "cached_parallelism",
    "cached_static_reuse",
    "current_analysis_manager",
    "Conflict",
    "ConflictKind",
    "DimClass",
    "DimKind",
    "EmbedPoint",
    "RefAccess",
    "SCALAR_PREFIX",
    "arrays_of",
    "body_dependence_graph",
    "classify_subscript",
    "collect_loop_accesses",
    "collect_stmt_accesses",
    "compute_alignment",
    "depends",
    "embed_after",
    "embed_before",
    "item_accesses",
    "items_depend",
    "pair_conflict",
    "shares_data",
    "symbolic_max",
    "symbolic_min",
]
