"""Alignment-constraint math for reuse-based loop fusion (paper §2.3).

Given the frame-relative accesses of two fusion units U1 (earlier in
program order) and U2 (later), fusing with alignment ``D`` places U2's
iteration ``u`` at fused position ``u + D``.  Every conflicting pair of
references (at least one write) demands that the U1 instance execute no
later than the U2 instance, which lower-bounds ``D``; read-read sharing
*prefers* the ``D`` that puts the reuse in the same fused iteration.  The
paper's ``FusibleTest`` is: per array take the smallest alignment that
satisfies dependence with closest reuse, then take the largest over all
arrays; fusion is possible iff that bound is a bounded constant.

The pair analysis below also reports *why* a bound is unbounded (which
boundary iterations pin the conflict), which is what lets the fusion
driver apply the paper's iteration reordering — splitting at boundary
iterations — and retry.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

from ..lang import Affine, DEFAULT_PARAM_MIN
from .access import RefAccess
from .classify import DimKind


class ConflictKind(Enum):
    DELTA = "delta"  # iteration-to-iteration: u2 = u1 + delta
    PIN1 = "pin1"  # U1 side pinned to one iteration
    PIN2 = "pin2"  # U2 side pinned to one iteration
    PINS = "pins"  # both sides pinned
    SERIALIZE = "serialize"  # all iterations of U1 before all of U2


@dataclass(frozen=True)
class Conflict:
    """One conflicting reference pair and the alignment bound it implies."""

    r1: RefAccess
    r2: RefAccess
    kind: ConflictKind
    bound: Optional[Affine]  # lower bound on D; None = cannot even express
    pin1: Optional[Affine] = None  # conflicting U1 iteration, when pinned
    pin2: Optional[Affine] = None  # conflicting U2 iteration, when pinned

    @property
    def is_required(self) -> bool:
        return self.r1.is_write or self.r2.is_write

    def bounded(self) -> bool:
        return self.bound is not None and self.bound.is_constant()


def _pin_in_range(
    pin: Affine, ref: RefAccess, param_min: int
) -> bool:
    """False when the pinned iteration is provably outside the ref's range.

    Pins outside the active range mean the conflicting instance never
    executes — there is no conflict.  Active ranges are conservative
    (never narrower than the truth), so a provably-outside verdict is safe.
    """
    if ref.active_lo is not None and pin.compare(ref.active_lo, param_min) == -1:
        return False
    if ref.active_hi is not None and pin.compare(ref.active_hi, param_min) == 1:
        return False
    return True


def _pin_join(
    current: Optional[Affine], new: Affine, param_min: int
) -> tuple[Optional[Affine], bool]:
    """Combine two pins on the same iteration variable.

    Returns (pin, consistent): inconsistent constant pins mean the pair can
    never conflict; unknown comparisons stay conservative (keep a pin).
    """
    if current is None:
        return new, True
    cmp = current.compare(new, param_min)
    if cmp == 0:
        return current, True
    if cmp is None:
        return current, True  # conservative: assume they may coincide
    return current, False


def pair_conflict(
    r1: RefAccess, r2: RefAccess, param_min: int = DEFAULT_PARAM_MIN
) -> Optional[Conflict]:
    """Analyze one reference pair; ``None`` when they can never overlap."""
    if r1.array != r2.array:
        return None
    delta: Optional[Affine] = None
    pin1: Optional[Affine] = None
    pin2: Optional[Affine] = None
    serialize = False
    for d1, d2 in zip(r1.dims, r2.dims):
        k1, k2 = d1.kind, d2.kind
        if k1 is DimKind.COMPLEX or k2 is DimKind.COMPLEX:
            serialize = True
        elif k1 is DimKind.VARIANT and k2 is DimKind.VARIANT:
            dk = d1.value - d2.value
            if delta is None:
                delta = dk
            else:
                cmp = delta.compare(dk, param_min)
                if cmp == 0:
                    pass
                elif cmp is None:
                    serialize = True  # ambiguous coupling between dims
                else:
                    return None  # provably different elements always
        elif k1 is DimKind.VARIANT and k2 is DimKind.INVARIANT:
            pin1, ok = _pin_join(pin1, d2.value - d1.value, param_min)
            if not ok:
                return None
        elif k1 is DimKind.INVARIANT and k2 is DimKind.VARIANT:
            pin2, ok = _pin_join(pin2, d1.value - d2.value, param_min)
            if not ok:
                return None
        elif k1 is DimKind.INVARIANT and k2 is DimKind.INVARIANT:
            cmp = d1.value.compare(d2.value, param_min)
            if cmp in (-1, 1):
                return None  # definitely different points
            if cmp is None:
                serialize = True
            # equal points: overlap, no coupling
        elif k1 is DimKind.VARIANT and k2 is DimKind.INNER:
            serialize = True  # one element vs a whole swept dimension
        elif k1 is DimKind.INNER and k2 is DimKind.VARIANT:
            serialize = True
        # INNER vs INNER / INNER vs INVARIANT: overlap, no coupling
    if pin1 is not None and not _pin_in_range(pin1, r1, param_min):
        return None
    if pin2 is not None and not _pin_in_range(pin2, r2, param_min):
        return None
    lo2 = r2.active_lo
    hi1 = r1.active_hi
    # Pins and couplings from *any* dimension confine the conflict set even
    # when another dimension serializes (a conflict needs equality on every
    # dimension), so they take priority over the serialize verdict — this
    # is what lets boundary-confined conflicts be peeled away.
    if delta is not None:
        # u2 = u1 + delta; order preserved iff u1 <= u1 + delta + D
        return Conflict(r1, r2, ConflictKind.DELTA, -delta, pin1, pin2)
    if pin1 is not None and pin2 is not None:
        return Conflict(r1, r2, ConflictKind.PINS, pin1 - pin2, pin1, pin2)
    if pin1 is not None:
        bound = None if lo2 is None else pin1 - lo2
        return Conflict(r1, r2, ConflictKind.PIN1, bound, pin1, None)
    if pin2 is not None:
        bound = None if hi1 is None else hi1 - pin2
        return Conflict(r1, r2, ConflictKind.PIN2, bound, None, pin2)
    # no coupling at all: every iteration of r1 may touch every iteration
    # of r2 (whole-dimension sweeps, scalars) — full serialization
    bound = None if (hi1 is None or lo2 is None) else hi1 - lo2
    return Conflict(r1, r2, ConflictKind.SERIALIZE, bound, None, None)


@dataclass
class AlignmentResult:
    """Outcome of the alignment computation between two fusion units."""

    fusible: bool
    alignment: int = 0
    #: conflicts whose required bound is not a bounded constant
    unbounded: tuple[Conflict, ...] = ()
    reason: str = ""


def compute_alignment(
    acc1: Sequence[RefAccess],
    acc2: Sequence[RefAccess],
    param_min: int = DEFAULT_PARAM_MIN,
) -> AlignmentResult:
    """The core of ``FusibleTest``: minimal legal alignment with closest reuse.

    Required bounds come from conflicting pairs (>= 1 write); preferred
    bounds come from read-read pairs with a consistent iteration coupling.
    The result is the maximum of all bounded constants; any unbounded
    *required* conflict makes the pair infusible (callers may then attempt
    boundary splitting using the pin information).
    """
    required: dict[str, list[int]] = {}
    preferred: dict[str, list[int]] = {}
    unbounded: list[Conflict] = []
    by_array2: dict[str, list[RefAccess]] = {}
    for r2 in acc2:
        by_array2.setdefault(r2.array, []).append(r2)
    for r1 in acc1:
        for r2 in by_array2.get(r1.array, ()):
            conflict = pair_conflict(r1, r2, param_min)
            if conflict is None:
                continue
            if conflict.is_required:
                if conflict.bounded():
                    required.setdefault(r1.array, []).append(
                        conflict.bound.int_value()
                    )
                else:
                    unbounded.append(conflict)
            else:
                if conflict.kind is ConflictKind.DELTA and conflict.bounded():
                    preferred.setdefault(r1.array, []).append(
                        conflict.bound.int_value()
                    )
    if unbounded:
        return AlignmentResult(
            fusible=False,
            unbounded=tuple(unbounded),
            reason=f"{len(unbounded)} conflict(s) without a bounded alignment",
        )
    # per array: dependence constraints dominate; read-read preference is
    # only consulted for arrays with no dependence at all (paper: "the
    # smallest alignment factor that satisfies data dependence and has the
    # closest reuse", then "the largest of all alignment factors").
    factors: list[int] = []
    for array in set(required) | set(preferred):
        if array in required:
            factors.append(max(required[array]))
        else:
            factors.append(max(preferred[array]))
    alignment = max(factors) if factors else 0
    return AlignmentResult(fusible=True, alignment=alignment)


def symbolic_max(
    values: Sequence[Affine], param_min: int = DEFAULT_PARAM_MIN
) -> Optional[Affine]:
    """Max of affine forms under the parameter assumptions; None if unordered."""
    if not values:
        return None
    best = values[0]
    for v in values[1:]:
        cmp = best.compare(v, param_min)
        if cmp is None:
            return None
        if cmp < 0:
            best = v
    return best


def symbolic_min(
    values: Sequence[Affine], param_min: int = DEFAULT_PARAM_MIN
) -> Optional[Affine]:
    if not values:
        return None
    best = values[0]
    for v in values[1:]:
        cmp = best.compare(v, param_min)
        if cmp is None:
            return None
        if cmp > 0:
            best = v
    return best
