"""Cached analysis entry points — the pass manager's memoization layer.

The compiler's expensive analyses (frame-relative access collection,
body dependence graphs, alignment constraints, regrouping access
patterns) are pure functions of immutable IR objects.  Historically
every consumer recomputed them from scratch: fusion re-collected every
member loop's accesses after each merge, the regrouping planner re-walked
the program, and distribution re-derived dependence edges pair by pair.

:class:`AnalysisManager` memoizes these computations keyed by *object
identity* (plus the auxiliary arguments).  Identity keying is what makes
the scheme sound without structural hashing: IR nodes are immutable, so
the same object always analyzes to the same result, and the manager
retains a strong reference to every key object so an id can never be
recycled while its entry is alive.

The manager is installed for a dynamic scope (one pipeline run) with
:func:`analysis_scope`; the ``cached_*`` entry points below consult the
active manager and fall back to direct computation when none is
installed, so library callers outside a pipeline see identical behavior
with zero caching overhead.

Passes declare which analysis *kinds* they preserve
(:data:`ANALYSIS_KINDS`); after each pass the pass manager calls
:meth:`AnalysisManager.invalidate` with the preserved set and everything
else is dropped.  Because keys are identities, a preserved entry is only
ever *hit* again when the transformed program still contains the very
same IR object — preservation can therefore never yield a stale result,
only save recomputation.

Cache traffic is reported to the metrics registry
(``analysis.cache.hits`` / ``misses`` / ``evictions``, plus per-kind
``analysis.cache.<kind>.*``) so ``repro profile`` shows analysis-cache
effectiveness per run.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Sequence

from ..lang import Loop, Stmt

#: every analysis kind the manager knows how to cache; pass ``preserves``
#: declarations are validated against this set
ANALYSIS_KINDS = (
    "loop_accesses",  # collect_loop_accesses(loop, params)
    "stmt_accesses",  # collect_stmt_accesses(stmt, params)
    "dependence_graph",  # body_dependence_graph(loop, params, assume)
    "alignment",  # compute_alignment(acc1, acc2, assume)
    "access_patterns",  # regrouping's analyze_access_patterns(program)
    "static_reuse",  # static.analyze_program(program, steps, assume)
    "parallelism",  # static.analyze_parallelism(program, params)
)


class AnalysisManager:
    """Identity-keyed memo table for the compiler's static analyses.

    One instance lives for one pipeline run.  Entries are grouped by
    analysis kind so a pass's ``preserves`` declaration can keep whole
    kinds alive across the pass boundary while everything else is
    evicted.
    """

    def __init__(self) -> None:
        #: kind -> {key -> (key_objects, value)}; key_objects pins the
        #: identity-keyed operands so their ids cannot be recycled
        self._tables: dict[str, dict[tuple, tuple[tuple, object]]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: per-kind counts, for profile output and the unit tests
        self.kind_stats: dict[str, dict[str, int]] = {}

    # -- core ------------------------------------------------------------

    def get(
        self,
        kind: str,
        key: tuple,
        key_objects: tuple,
        compute: Callable[[], object],
    ) -> object:
        """Return the cached value for ``(kind, key)`` or compute it.

        ``key_objects`` are the objects whose ``id()`` participates in
        ``key``; the manager keeps references to them for the entry's
        lifetime so identity keys stay unambiguous.
        """
        if kind not in ANALYSIS_KINDS:
            raise ValueError(f"unknown analysis kind {kind!r}")
        table = self._tables.setdefault(kind, {})
        stats = self.kind_stats.setdefault(
            kind, {"hits": 0, "misses": 0, "evictions": 0}
        )
        entry = table.get(key)
        if entry is not None:
            self.hits += 1
            stats["hits"] += 1
            _metric(kind, "hits")
            return entry[1]
        self.misses += 1
        stats["misses"] += 1
        _metric(kind, "misses")
        value = compute()
        table[key] = (key_objects, value)
        return value

    def invalidate(self, preserved: frozenset[str] = frozenset()) -> None:
        """Drop every cached kind not named in ``preserved``."""
        unknown = preserved - set(ANALYSIS_KINDS)
        if unknown:
            raise ValueError(f"unknown analysis kinds preserved: {sorted(unknown)}")
        for kind in list(self._tables):
            if kind in preserved:
                continue
            dropped = len(self._tables.pop(kind))
            if dropped:
                self.evictions += dropped
                stats = self.kind_stats.setdefault(
                    kind, {"hits": 0, "misses": 0, "evictions": 0}
                )
                stats["evictions"] += dropped
                _metric(kind, "evictions", dropped)

    def cached_kinds(self) -> dict[str, int]:
        """Live entry counts per kind (diagnostics / tests)."""
        return {kind: len(table) for kind, table in self._tables.items() if table}


def _metric(kind: str, event: str, value: int = 1) -> None:
    from ..obs import metrics

    metrics.inc(f"analysis.cache.{event}", value)
    metrics.inc(f"analysis.cache.{kind}.{event}", value)


_ACTIVE: contextvars.ContextVar[Optional[AnalysisManager]] = contextvars.ContextVar(
    "repro_analysis_manager", default=None
)


def current_analysis_manager() -> Optional[AnalysisManager]:
    """The manager installed by the innermost :func:`analysis_scope`."""
    return _ACTIVE.get()


@contextmanager
def analysis_scope(manager: AnalysisManager) -> Iterator[AnalysisManager]:
    """Install ``manager`` as the active cache for the dynamic extent."""
    token = _ACTIVE.set(manager)
    try:
        yield manager
    finally:
        _ACTIVE.reset(token)


# -- cached entry points ------------------------------------------------------
#
# Consumers call these instead of the raw analysis functions; with no
# active manager they are plain pass-throughs.


def cached_loop_accesses(loop: Loop, params: Sequence[str]) -> list:
    from .access import collect_loop_accesses

    am = _ACTIVE.get()
    if am is None:
        return collect_loop_accesses(loop, params)
    key_params = tuple(params)
    return am.get(
        "loop_accesses",
        (id(loop), key_params),
        (loop,),
        lambda: collect_loop_accesses(loop, key_params),
    )


def cached_stmt_accesses(stmt: Stmt, params: Sequence[str]) -> list:
    from .access import collect_stmt_accesses

    am = _ACTIVE.get()
    if am is None:
        return collect_stmt_accesses(stmt, params)
    key_params = tuple(params)
    return am.get(
        "stmt_accesses",
        (id(stmt), key_params),
        (stmt,),
        lambda: collect_stmt_accesses(stmt, key_params),
    )


def cached_body_dependence_graph(loop: Loop, params: Sequence[str], param_min):
    from .dependence import body_dependence_graph

    am = _ACTIVE.get()
    if am is None:
        return body_dependence_graph(loop, params, param_min)
    key_params = tuple(params)
    return am.get(
        "dependence_graph",
        (id(loop), key_params, param_min),
        (loop,),
        lambda: body_dependence_graph(loop, key_params, param_min),
    )


def cached_alignment(acc1: list, acc2: list, param_min):
    """Memoized ``compute_alignment`` keyed by the access-list identities.

    Fusion's working items keep their access summaries alive and stable
    per (unit, version), so identity keying matches exactly the pairs the
    greedy driver may re-test.
    """
    from .constraint import compute_alignment

    am = _ACTIVE.get()
    if am is None:
        return compute_alignment(acc1, acc2, param_min)
    return am.get(
        "alignment",
        (id(acc1), id(acc2), param_min),
        (acc1, acc2),
        lambda: compute_alignment(acc1, acc2, param_min),
    )


def cached_static_reuse(program, steps: int = 1, assume=None):
    """Memoized symbolic reuse profile (``repro.static.analyze_program``).

    Keyed by program identity: the profile depends on nothing but the
    immutable IR, so any pass that returns the same object (analysis
    passes like ``regroup``) keeps the profile hit-able, and passes that
    rebuild the program miss naturally.
    """
    from ..static import analyze_program

    am = _ACTIVE.get()
    if am is None:
        return analyze_program(program, steps=steps, assume=assume)
    return am.get(
        "static_reuse",
        (id(program), steps, assume),
        (program,),
        lambda: analyze_program(program, steps=steps, assume=assume),
    )


def cached_parallelism(program, params=None):
    """Memoized parallelism profile (``static.analyze_parallelism``).

    Keyed by program identity plus the concrete parameter binding; like
    the reuse profile, the verdicts depend on nothing but the immutable
    IR, so identity keying is sound and per-pass invalidation follows
    the pass's ``preserves`` declaration.
    """
    from ..static.parallelism import analyze_parallelism, bind_params

    am = _ACTIVE.get()
    if am is None:
        return analyze_parallelism(program, params)
    param_key = tuple(sorted(bind_params(program, params).items()))
    return am.get(
        "parallelism",
        (id(program), param_key),
        (program,),
        lambda: analyze_parallelism(program, params),
    )


def cached_access_patterns(program, strict: bool = False):
    from ..core.regroup.analysis import analyze_access_patterns

    am = _ACTIVE.get()
    if am is None:
        return analyze_access_patterns(program, strict)
    return am.get(
        "access_patterns",
        (id(program), strict),
        (program,),
        lambda: analyze_access_patterns(program, strict),
    )
