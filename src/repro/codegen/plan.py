"""Parameter-free structural codegen plan (pass-manager / lint surface).

The tracer and executor make their final supported-subset decisions with
a concrete parameter binding in hand (coefficients must fold to
integers, ranges must be known).  But most disqualifiers are *structural*
— an un-inlined call, a non-affine subscript, a fractional stride — and
visible on the bare AST.  :func:`plan_program` classifies each top-level
nest on that basis so the ``codegen-plan`` pass can annotate pipelines
and the ``S401`` lint can warn about silent interpreter fallback before
anything is ever traced.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..lang import (
    AnalysisError,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CallStmt,
    Guard,
    Loop,
    Program,
    Stmt,
    UnaryOp,
    array_reads,
)


@dataclass(frozen=True)
class NestPlan:
    """Codegen outlook for one top-level statement of a program body."""

    position: int
    kind: str  # "loop", "guard", "assign", "call"
    index: Optional[str]  # outermost loop variable, when kind == "loop"
    traceable: bool
    reason: Optional[str] = None  # why the tracer will fall back


@dataclass(frozen=True)
class CodegenPlan:
    """Structural codegen outlook for a whole program."""

    program_name: str
    nests: tuple[NestPlan, ...]

    @property
    def fallback_nests(self) -> tuple[NestPlan, ...]:
        return tuple(n for n in self.nests if not n.traceable)

    @property
    def fully_traceable(self) -> bool:
        return not self.fallback_nests

    def summary(self) -> str:
        total = len(self.nests)
        bad = len(self.fallback_nests)
        return f"{total - bad}/{total} nests traceable"


def _check_stmt(stmt: Stmt) -> Optional[str]:
    """First structural disqualifier in ``stmt``'s subtree, or None."""
    if isinstance(stmt, CallStmt):
        return f"call to {stmt.proc!r} (not inlined)"
    if isinstance(stmt, Assign):
        try:
            refs = [r for r in array_reads(stmt.expr)]
            if isinstance(stmt.target, ArrayRef):
                refs.append(stmt.target)
            for ref in refs:
                for sub in ref.indices:
                    form = sub.affine()
                    for _, coeff in form.coeffs:
                        if isinstance(coeff, Fraction) and coeff.denominator != 1:
                            return f"fractional subscript stride in {ref.array}"
        except AnalysisError as exc:
            return str(exc)
        return _check_expr(stmt.expr)
    if isinstance(stmt, Loop):
        for e in (stmt.lower, stmt.upper):
            try:
                e.affine()
            except AnalysisError as exc:
                return str(exc)
        for s in stmt.body:
            reason = _check_stmt(s)
            if reason:
                return reason
        return None
    if isinstance(stmt, Guard):
        for s in stmt.body + stmt.else_body:
            reason = _check_stmt(s)
            if reason:
                return reason
        return None
    return f"unsupported statement {type(stmt).__name__}"


def _check_expr(expr) -> Optional[str]:
    if isinstance(expr, BinOp):
        return _check_expr(expr.left) or _check_expr(expr.right)
    if isinstance(expr, UnaryOp):
        return _check_expr(expr.operand)
    if isinstance(expr, Call):
        for a in expr.args:
            reason = _check_expr(a)
            if reason:
                return reason
    return None


def plan_program(program: Program) -> CodegenPlan:
    """Classify each top-level nest of ``program`` for the codegen tracer."""
    nests = []
    for pos, stmt in enumerate(program.body):
        if isinstance(stmt, Loop):
            kind, index = "loop", stmt.index
        elif isinstance(stmt, Guard):
            kind, index = "guard", None
        elif isinstance(stmt, Assign):
            kind, index = "assign", None
        else:
            kind, index = "call", None
        reason = _check_stmt(stmt)
        nests.append(NestPlan(pos, kind, index, reason is None, reason))
    return CodegenPlan(program.name, tuple(nests))


def lint_codegen(program: Program, inline: bool = True):
    """The ``S401`` silent-fallback lint as a DiagnosticBag.

    ``inline`` first expands procedure calls the way the measurement
    harness does before tracing, so a program is only flagged when the
    *measured* form would fall back.
    """
    from ..verify.diagnostics import DiagnosticBag

    bag = DiagnosticBag()
    target = program
    if inline and program.procedures:
        from ..transform import inline_procedures

        try:
            target = inline_procedures(program)
        except Exception:  # un-inlinable: lint the raw form instead
            target = program
    plan = plan_program(target)
    for nest in plan.fallback_nests:
        label = f"nest {nest.position}" + (
            f" (loop {nest.index})" if nest.index else ""
        )
        bag.warning(
            "S401",
            f"codegen falls back to the interpreter: {nest.reason}",
            where=f"{program.name}: {label}",
            nest=nest.position,
            reason=nest.reason,
        )
    return bag
