"""Shared lowering utilities for the codegen backends.

The supported subset is *integer affine*: after folding the concrete
parameter binding into an :class:`~repro.lang.Affine` form, every
remaining coefficient and the constant must be integers over loop
variables.  Anything else (fractional strides, unbound guard indices,
un-inlined calls, packing-capacity overflow) raises
:class:`CodegenUnsupported`, which the backends catch to fall back to
the interpreter oracle — out-of-bounds accesses, by contrast, stay
:class:`~repro.lang.AnalysisError` exactly as in the interpreter path.
"""

from __future__ import annotations

import hashlib
from typing import Mapping

import numpy as np

from ..lang import Affine


class CodegenUnsupported(Exception):
    """A construct falls outside the codegen backend's supported subset."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def int_affine(
    form: Affine, params: Mapping[str, int]
) -> tuple[int, tuple[tuple[str, int], ...]]:
    """Fold ``params`` into ``form``; require integral residual terms.

    Returns ``(const, ((var, coeff), ...))`` over loop variables only.
    """
    const = form.const
    terms = []
    for name, coeff in form.coeffs:
        if name in params:
            const += coeff * params[name]
        else:
            if coeff.denominator != 1:
                raise CodegenUnsupported(
                    f"fractional coefficient {coeff} of {name!r}"
                )
            terms.append((name, int(coeff)))
    if const.denominator != 1:
        raise CodegenUnsupported(f"fractional constant {const} after binding")
    return int(const), tuple(terms)


def trace_fingerprint(trace) -> str:
    """Stable hash of an :class:`~repro.interp.trace.AccessTrace`.

    Same scheme as :func:`repro.harness.cache.layout_fingerprint`
    (sha256 prefix), over every array that defines trace equality, so
    the committed golden fingerprints diff readably per variant.
    """
    h = hashlib.sha256()
    h.update(repr(trace.array_names).encode())
    h.update(repr(trace.array_sizes).encode())
    h.update(repr([(r.ref_id, r.stmt_id, r.array, r.is_write, r.text) for r in trace.refs]).encode())
    for arr in (trace.array_ids, trace.elems, trace.ref_ids):
        h.update(np.ascontiguousarray(arr, dtype=np.int64).tobytes())
    h.update(np.packbits(np.asarray(trace.writes, dtype=bool)).tobytes())
    if trace.instr_ids is not None:
        h.update(np.ascontiguousarray(trace.instr_ids, dtype=np.int64).tobytes())
    return h.hexdigest()[:16]
