"""Vectorized execution of programs (the codegen execution backend).

The reference :class:`~repro.interp.interpreter.Interpreter` evaluates
one statement instance at a time in Python.  This backend picks, for
each top-level loop nest, one *vectorization axis*: a loop whose lanes
are proven free of cross-lane dependences, so every statement instance
along it can be evaluated as a single batched float64 numpy op.  The
remaining loops stay ordinary Python loops, which preserves all
loop-carried dependences exactly as the interpreter runs them.

Bit-for-bit equality with the interpreter (pinned by ``tests/codegen``)
comes from replaying the scalar operation order per lane: IEEE-754 adds,
multiplies, divides, and correctly-rounded ``sqrt`` are elementwise
identical whether evaluated by Python floats or numpy float64 arrays,
and opaque functions are expanded through
:meth:`~repro.interp.funcs.FunctionTable.linear_spec` in the exact
``sum(c*a ...) + offset`` association the scalar table uses.  Builtins
without that guarantee (``exp``/``sin``/``cos``/``min``/``max``) make
the enclosing loop fall back to the interpreter instead.

Legality is decided by :func:`plan_execution`: a conservative
cross-lane dependence test over every pair of same-array references
(at least one a write) in the candidate loop's subtree, using folded
integer-affine subscripts, value ranges of the surrounding loop
variables, and a gcd feasibility refinement — the shared
:func:`repro.static.dependence_test.lane_conflict` test, which the
static parallelism analyzer solves exactly for race witnesses.  Any
doubt means the loop is *not* vectorized — the fallback is the oracle
itself, so the result is still exact, just slower; ``codegen.exec.*``
metrics record which.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..interp.funcs import _BUILTINS, DEFAULT_FUNCTIONS, FunctionTable
from ..interp.interpreter import Interpreter
from ..interp.state import check_params, init_arrays
from ..interp import tracegen as _tg
from ..lang import (
    AnalysisError,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CallStmt,
    Const,
    Expr,
    Guard,
    IndexVar,
    Loop,
    Param,
    Program,
    ScalarRef,
    Stmt,
    UnaryOp,
    ValidationError,
)
from ..obs import metrics
from ..static.dependence_test import lane_conflict
from .lowering import CodegenUnsupported, int_affine

#: builtins whose numpy evaluation is bit-identical to the math module
_VECTOR_BUILTINS = frozenset({"sqrt", "abs"})


@dataclass(frozen=True)
class LoopDecision:
    """Outcome of one vectorization attempt (for metrics and tests)."""

    index: str
    vectorized: bool
    reason: Optional[str] = None


@dataclass
class ExecPlan:
    """Which loops run vectorized, keyed by AST node identity."""

    vectorized: dict[int, str] = field(default_factory=dict)
    decisions: list[LoopDecision] = field(default_factory=list)

    @property
    def fallback_reasons(self) -> tuple[str, ...]:
        return tuple(d.reason for d in self.decisions if not d.vectorized)


# -- planning ----------------------------------------------------------------


def _interval_eval(form, params, ranges) -> tuple[int, int]:
    """Concrete [min, max] of an affine form over loop-variable ranges."""
    const, terms = int_affine(form, params)
    lo = hi = const
    for name, coeff in terms:
        if name not in ranges:
            raise CodegenUnsupported(f"unbound loop variable {name!r}")
        vlo, vhi = ranges[name]
        lo += min(coeff * vlo, coeff * vhi)
        hi += max(coeff * vlo, coeff * vhi)
    return lo, hi


class _SubtreeInfo:
    """Everything the dependence test needs about a candidate subtree."""

    def __init__(self) -> None:
        # array name -> list of (const, {var: coeff}, is_write)
        self.refs: dict[str, list[tuple[int, dict[str, int], bool]]] = {}
        self.inner_ranges: dict[str, tuple[int, int]] = {}


class _Planner:
    def __init__(self, program: Program, params: Mapping[str, int]) -> None:
        self.program = program
        self.params = params
        self.compiler = _tg._Compiler(program, params)  # for linform/strides
        self.plan = ExecPlan()
        self._rejected: set[int] = set()

    def run(self) -> ExecPlan:
        for stmt in self.program.body:
            self._visit(stmt, {})
        return self.plan

    def _visit(self, stmt: Stmt, ranges: dict[str, tuple[int, int]]) -> None:
        if isinstance(stmt, Guard):
            for s in stmt.body + stmt.else_body:
                self._visit(s, ranges)
            return
        if not isinstance(stmt, Loop):
            return
        try:
            lo_r = _interval_eval(stmt.lower.affine(), self.params, ranges)
            hi_r = _interval_eval(stmt.upper.affine(), self.params, ranges)
        except (CodegenUnsupported, AnalysisError):
            return  # bounds outside the subset: leave the whole nest scalar
        rng = (lo_r[0], hi_r[1])
        if rng[1] < rng[0]:
            return  # provably zero-trip
        reason = self._try_vectorize(stmt, ranges, rng)
        node_id = id(stmt)
        if reason is None:
            # an aliased subtree must be legal under *every* context it
            # appears in; a prior failure therefore wins
            if node_id not in self._rejected:
                self.plan.vectorized[node_id] = stmt.index
            self.plan.decisions.append(LoopDecision(stmt.index, True))
            return
        self._rejected.add(node_id)
        self.plan.vectorized.pop(node_id, None)
        self.plan.decisions.append(LoopDecision(stmt.index, False, reason))
        inner = dict(ranges)
        inner[stmt.index] = rng
        for s in stmt.body:
            self._visit(s, inner)

    # -- legality -----------------------------------------------------------

    def _try_vectorize(
        self, loop: Loop, outer: dict[str, tuple[int, int]], rng: tuple[int, int]
    ) -> Optional[str]:
        """None when ``loop`` may vectorize along its own index, else why not."""
        axis = loop.index
        known = dict(outer)
        known[axis] = rng
        info = _SubtreeInfo()
        try:
            self._collect(loop.body, axis, known, info)
        except CodegenUnsupported as exc:
            return exc.reason
        except AnalysisError as exc:
            return str(exc)
        span = rng[1] - rng[0]
        for refs in info.refs.values():
            for i, (kf, tf, wf) in enumerate(refs):
                for kg, tg_, wg in refs[i:]:
                    if not (wf or wg):
                        continue
                    if lane_conflict(
                        kf, tf, kg, tg_, axis, span, rng[0],
                        outer, info.inner_ranges,
                    ):
                        return f"cross-lane dependence on axis {axis!r}"
        return None

    def _collect(
        self,
        body: tuple[Stmt, ...],
        axis: str,
        known: dict[str, tuple[int, int]],
        info: _SubtreeInfo,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, Assign):
                if isinstance(stmt.target, ScalarRef):
                    raise CodegenUnsupported(
                        f"scalar assignment to {stmt.target.name!r}"
                    )
                self._collect_expr(stmt.expr, info)
                self._add_ref(stmt.target, True, info)
            elif isinstance(stmt, Loop):
                lo = stmt.lower.affine()
                hi = stmt.upper.affine()
                if lo.coeff(axis) != 0 or hi.coeff(axis) != 0:
                    raise CodegenUnsupported(
                        f"inner loop {stmt.index!r} bounds depend on axis"
                    )
                rng = (
                    _interval_eval(lo, self.params, known)[0],
                    _interval_eval(hi, self.params, known)[1],
                )
                info.inner_ranges[stmt.index] = rng
                sub = dict(known)
                sub[stmt.index] = rng
                self._collect(stmt.body, axis, sub, info)
            elif isinstance(stmt, Guard):
                if stmt.index != axis:
                    if stmt.index not in known:
                        raise CodegenUnsupported(
                            f"guard on unbound index {stmt.index!r}"
                        )
                    for iv in stmt.intervals:
                        if iv.lower.coeff(axis) != 0 or iv.upper.coeff(axis) != 0:
                            raise CodegenUnsupported(
                                "guard endpoints depend on axis"
                            )
                self._collect(stmt.body, axis, known, info)
                self._collect(stmt.else_body, axis, known, info)
            else:
                raise CodegenUnsupported(
                    f"cannot vectorize {type(stmt).__name__}"
                )

    def _collect_expr(self, expr: Expr, info: _SubtreeInfo) -> None:
        if isinstance(expr, ArrayRef):
            self._add_ref(expr, False, info)
        elif isinstance(expr, BinOp):
            self._collect_expr(expr.left, info)
            self._collect_expr(expr.right, info)
        elif isinstance(expr, UnaryOp):
            self._collect_expr(expr.operand, info)
        elif isinstance(expr, Call):
            if expr.func in _BUILTINS and expr.func not in _VECTOR_BUILTINS:
                raise CodegenUnsupported(
                    f"builtin {expr.func!r} lacks a bit-exact vector form"
                )
            for a in expr.args:
                self._collect_expr(a, info)
        # Const/Param/IndexVar/ScalarRef carry no array accesses

    def _add_ref(self, ref: ArrayRef, is_write: bool, info: _SubtreeInfo) -> None:
        const, terms = int_affine(self.compiler.linform(ref), self.params)
        info.refs.setdefault(ref.array, []).append(
            (const, dict(terms), is_write)
        )

def plan_execution(program: Program, params: Mapping[str, int]) -> ExecPlan:
    """Choose a vectorization axis per loop nest of ``program``.

    Pure analysis — safe to cache per (program, params); the executor
    calls it once in its constructor.
    """
    bound = check_params(program, params)
    return _Planner(program, bound).run()


# -- execution ---------------------------------------------------------------


class CodegenExecutor:
    """Drop-in vectorized twin of :class:`~repro.interp.Interpreter`.

    Composes an interpreter for shared state (arrays, scalars, the
    integer environment) and for every construct the plan leaves
    scalar, so the fallback path *is* the oracle.
    """

    def __init__(
        self,
        program: Program,
        params: Mapping[str, int],
        functions: FunctionTable = DEFAULT_FUNCTIONS,
    ) -> None:
        self.interp = Interpreter(program, params, functions)
        self.plan = plan_execution(program, params)
        self._sub_cache: dict[int, list[tuple[int, tuple[tuple[str, int], ...]]]] = {}

    @property
    def program(self) -> Program:
        return self.interp.program

    def run(self, seed: int = 2001, steps: int = 1) -> dict[str, np.ndarray]:
        """Bit-for-bit the same arrays ``Interpreter.run`` would return."""
        interp = self.interp
        program = interp.program
        interp.arrays = init_arrays(program, interp.params, seed)
        interp.scalars = {name: 0.0 for name in program.scalars}
        for decl in program.arrays:
            interp._extent_cache[decl.name] = decl.shape(interp.params)
        n_vec = len(self.plan.vectorized)
        n_fall = sum(1 for d in self.plan.decisions if not d.vectorized)
        metrics.inc("codegen.exec.runs")
        metrics.inc("codegen.exec.loops.vectorized", n_vec)
        if n_fall:
            metrics.inc("codegen.exec.loops.fallback", n_fall)
            for reason in set(self.plan.fallback_reasons):
                metrics.inc(f"codegen.exec.fallback[{reason}]")
        for _ in range(steps):
            self._exec_body(program.body)
        return interp.arrays

    # -- scalar walk (delegating to the interpreter) -------------------------

    def _exec_body(self, body: tuple[Stmt, ...]) -> None:
        for stmt in body:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: Stmt) -> None:
        interp = self.interp
        if isinstance(stmt, Loop):
            if id(stmt) in self.plan.vectorized:
                self._run_vector(stmt)
                return
            lo = interp._eval_int(stmt.lower)
            hi = interp._eval_int(stmt.upper)
            env = interp._env
            for i in range(lo, hi + 1):
                env[stmt.index] = i
                self._exec_body(stmt.body)
            env.pop(stmt.index, None)
        elif isinstance(stmt, Guard):
            value = interp._env.get(stmt.index)
            if value is None:
                raise ValidationError(f"guard index {stmt.index!r} unbound")
            if interp._in_intervals(stmt, value):
                self._exec_body(stmt.body)
            else:
                self._exec_body(stmt.else_body)
        else:
            interp.exec_stmt(stmt)

    # -- vector runtime ------------------------------------------------------

    def _run_vector(self, loop: Loop) -> None:
        interp = self.interp
        lo = interp._eval_int(loop.lower)
        hi = interp._eval_int(loop.upper)
        if lo > hi:
            return
        avals = np.arange(lo, hi + 1, dtype=np.int64)
        self._vec_body(loop.body, loop.index, avals)

    def _vec_body(self, body: tuple[Stmt, ...], var: str, avals: np.ndarray) -> None:
        if avals.size == 0:
            return
        for stmt in body:
            self._vec_stmt(stmt, var, avals)

    def _vec_stmt(self, stmt: Stmt, var: str, avals: np.ndarray) -> None:
        interp = self.interp
        if isinstance(stmt, Assign):
            value = self._vec_eval(stmt.expr, var, avals)
            target = stmt.target
            interp.arrays[target.array][
                self._vec_subscripts(target, var, avals)
            ] = value
        elif isinstance(stmt, Loop):
            lo = interp._eval_int(stmt.lower)
            hi = interp._eval_int(stmt.upper)
            env = interp._env
            for i in range(lo, hi + 1):
                env[stmt.index] = i
                self._vec_body(stmt.body, var, avals)
            env.pop(stmt.index, None)
        elif isinstance(stmt, Guard):
            if stmt.index == var:
                mask = np.zeros(avals.shape, dtype=bool)
                for iv in stmt.intervals:
                    lo_v = self._affine_over(iv.lower, var, avals)
                    hi_v = self._affine_over(iv.upper, var, avals)
                    mask |= (avals >= lo_v) & (avals <= hi_v)
                self._vec_body(stmt.body, var, avals[mask])
                self._vec_body(stmt.else_body, var, avals[~mask])
            else:
                value = interp._env[stmt.index]
                if interp._in_intervals(stmt, value):
                    self._vec_body(stmt.body, var, avals)
                else:
                    self._vec_body(stmt.else_body, var, avals)
        else:  # pragma: no cover - excluded by planning
            raise ValidationError(f"cannot vectorize {type(stmt).__name__}")

    def _affine_over(self, form, var: str, avals: np.ndarray):
        """Evaluate an Affine: int scalar, or int64 array along ``var``."""
        const, terms = int_affine(form, self.interp.params)
        out = const
        for name, coeff in terms:
            out = out + coeff * (avals if name == var else self.interp._env[name])
        return out

    def _vec_subscripts(self, ref: ArrayRef, var: str, avals: np.ndarray):
        folded = self._sub_cache.get(id(ref))
        if folded is None:
            folded = [
                int_affine(sub.affine(), self.interp.params) for sub in ref.indices
            ]
            self._sub_cache[id(ref)] = folded
        extents = self.interp._extent_cache[ref.array]
        out = []
        for k, (const, terms) in enumerate(folded):
            idx = const
            for name, coeff in terms:
                idx = idx + coeff * (
                    avals if name == var else self.interp._env[name]
                )
            if isinstance(idx, np.ndarray):
                lo, hi = (int(idx.min()), int(idx.max())) if idx.size else (1, 1)
            else:
                lo = hi = idx
            if lo < 1 or hi > extents[k]:
                bad = lo if lo < 1 else hi
                raise ValidationError(
                    f"{ref.array}[...] dim {k}: index {bad} outside 1..{extents[k]}"
                )
            out.append(idx - 1)
        return tuple(out)

    def _vec_eval(self, expr: Expr, var: str, avals: np.ndarray):
        interp = self.interp
        if isinstance(expr, Const):
            return float(expr.value)
        if isinstance(expr, IndexVar):
            if expr.name == var:
                return avals.astype(np.float64)
            return float(interp._env[expr.name])
        if isinstance(expr, Param):
            return float(interp._env[expr.name])
        if isinstance(expr, ScalarRef):
            return interp.scalars[expr.name]
        if isinstance(expr, ArrayRef):
            return interp.arrays[expr.array][self._vec_subscripts(expr, var, avals)]
        if isinstance(expr, BinOp):
            lhs = self._vec_eval(expr.left, var, avals)
            rhs = self._vec_eval(expr.right, var, avals)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            if expr.op == "/":
                return lhs / rhs
            raise ValidationError(f"unknown operator {expr.op!r}")
        if isinstance(expr, UnaryOp):
            return -self._vec_eval(expr.operand, var, avals)
        if isinstance(expr, Call):
            args = [self._vec_eval(a, var, avals) for a in expr.args]
            if expr.func in _BUILTINS:
                if expr.func == "sqrt":
                    return np.sqrt(np.abs(args[0]))
                if expr.func == "abs":
                    return np.abs(args[0])
                raise ValidationError(  # pragma: no cover - excluded by planning
                    f"builtin {expr.func!r} not vectorizable"
                )
            coeffs, offset = interp.functions.linear_spec(expr.func, len(args))
            acc = np.float64(0.0)
            for c, a in zip(coeffs, args):
                acc = acc + c * a
            return acc + offset
        raise ValidationError(f"cannot evaluate {expr!r}")


def run_program(
    program: Program,
    params: Mapping[str, int],
    seed: int = 2001,
    steps: int = 1,
    functions: Optional[FunctionTable] = None,
) -> dict[str, np.ndarray]:
    """Convenience wrapper mirroring :func:`repro.interp.run_program`."""
    executor = CodegenExecutor(program, params, functions or DEFAULT_FUNCTIONS)
    return executor.run(seed=seed, steps=steps)
