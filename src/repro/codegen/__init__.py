"""Native-speed numpy codegen backend for the loop IR.

The interpreter (:mod:`repro.interp.interpreter`) and the trace
generator (:mod:`repro.interp.tracegen`) are the correctness oracles;
this package is the *fast path* proven against them bit for bit by the
differential suite under ``tests/codegen/``.  Two backends share one
lowering of affine references:

:func:`trace_program`
    whole-nest vectorized trace generation — every loop level is
    enumerated as numpy index arrays (no Python work per iteration),
    guards split instance frames by membership masks, and the per-step
    stream is tiled across time steps;
:func:`run_program`
    vectorized execution — each loop nest picks one legal
    vectorization axis (proved free of cross-instance dependences) and
    evaluates statements as batched float64 ops that replay the
    interpreter's operation order exactly.

Both fall back cleanly — per top-level nest (tracing) or per loop
(execution) — to the interpreter-based oracle for any construct outside
the supported subset, recording ``codegen.*`` fallback metrics so the
degradation is observable (and lintable, code S401).
"""

from .executor import CodegenExecutor, plan_execution, run_program
from .lowering import CodegenUnsupported, int_affine, trace_fingerprint
from .plan import CodegenPlan, plan_program
from .tracer import trace_program, trace_stream

__all__ = [
    "CodegenExecutor",
    "CodegenPlan",
    "CodegenUnsupported",
    "int_affine",
    "plan_execution",
    "plan_program",
    "run_program",
    "trace_fingerprint",
    "trace_program",
    "trace_stream",
]
