"""Whole-nest vectorized trace generation (the codegen trace backend).

The interpreter-based generator (:mod:`repro.interp.tracegen`) walks
outer loops in Python and vectorizes only the innermost level.  This
backend removes Python-per-iteration work at *every* level: a loop nest
is lowered bottom-up into *blocks* over instance frames.

A *frame* maps each live loop variable to an int64 array holding its
value for every instance of the enclosing iteration space, in execution
order.  Emitting a node against a frame of ``p`` instances yields either

* a **uniform** block — every instance contributes the same column
  pattern, so element indices live in a ``(p, l)`` matrix and the
  per-access metadata is a single length-``l`` row.  Collapsing a
  rectangular loop is then just a reshape, and merging sibling
  statements an ``hstack``; or
* a **grouped** block — per-instance access counts vary (guards,
  triangular bounds), stored flat with a ``counts`` vector and merged
  by scatter on computed destination offsets.

Per-access metadata (write flag, array id, ref id, and — when requested
— the instruction offset within the instance) is packed into one int64
so every structural merge touches two arrays instead of five.  The
whole body is emitted once and tiled across time steps.

Any construct outside the supported subset makes that *top-level nest*
(not the whole program) fall back to the interpreter-based generator,
sharing the same :class:`~repro.interp.trace.TraceBuilder` so the
stream stays in execution order; ``codegen.trace.*`` metrics record the
split and the fallback reasons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..interp import tracegen as _tg
from ..interp.state import check_params
from ..interp.trace import AccessTrace
from ..obs import metrics
from .lowering import CodegenUnsupported, int_affine

_AID_SHIFT, _AID_BITS = 1, 12
_REF_SHIFT, _REF_BITS = 13, 19
_IOFS_SHIFT = 32
#: per-nest instruction budget so packed instruction offsets cannot wrap
_MAX_ICOUNT = 1 << 30


@dataclass
class _Uniform:
    """Every instance emits the same columns: elems[(instance, column)]."""

    p: int
    elems: np.ndarray  # (p, l) int64
    pattern: np.ndarray  # (l,) packed write|aid|ref|iofs
    icount: int  # instructions per instance


@dataclass
class _Grouped:
    """Variable per-instance counts; data flat, grouped by instance."""

    p: int
    counts: np.ndarray  # (p,) int64
    icounts: np.ndarray  # (p,) int64
    elems: np.ndarray  # flat int64
    pattern: np.ndarray  # flat int64


def _empty(p: int) -> _Uniform:
    return _Uniform(p, np.empty((p, 0), np.int64), np.empty(0, np.int64), 0)


def _intra(counts: np.ndarray, total: int) -> np.ndarray:
    """``0..c0-1, 0..c1-1, ...`` — offsets within each group."""
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def _to_grouped(b) -> _Grouped:
    if isinstance(b, _Grouped):
        return b
    length = b.elems.shape[1]
    return _Grouped(
        b.p,
        np.full(b.p, length, np.int64),
        np.full(b.p, b.icount, np.int64),
        np.ascontiguousarray(b.elems).reshape(-1),
        np.tile(b.pattern, b.p),
    )


class _Emitter:
    def __init__(self, compiler: _tg._Compiler, with_instr: bool) -> None:
        self.sizes = compiler.sizes
        self.params = compiler.params
        self.with_instr = with_instr
        self._lin_cache: dict[int, tuple[int, tuple[tuple[str, int], ...]]] = {}
        self._pattern_cache: dict[int, np.ndarray] = {}

    # -- affine evaluation over frames --------------------------------------

    def _value(self, form, frame: Mapping[str, np.ndarray], key=None):
        """Evaluate an affine form; int scalar when frame-independent."""
        folded = self._lin_cache.get(key) if key is not None else None
        if folded is None:
            folded = int_affine(form, self.params)
            if key is not None:
                self._lin_cache[key] = folded
        const, terms = folded
        out = None
        for name, coeff in terms:
            arr = frame.get(name)
            if arr is None:
                raise CodegenUnsupported(f"unbound loop variable {name!r}")
            term = arr * coeff
            out = term if out is None else out + term
        if out is None:
            return const
        if const:
            out += const
        return out

    # -- node emission -------------------------------------------------------

    def emit(self, node, frame: Mapping[str, np.ndarray], p: int):
        if isinstance(node, _tg._CAssign):
            return self._emit_assign(node, frame, p)
        if isinstance(node, _tg._CLoop):
            return self._emit_loop(node, frame, p)
        if isinstance(node, _tg._CGuard):
            return self._emit_guard(node, frame, p)
        raise CodegenUnsupported(f"cannot lower {type(node).__name__}")

    def emit_body(self, nodes, frame, p: int):
        return self._merge_body([self.emit(n, frame, p) for n in nodes], p)

    def _emit_assign(self, node: _tg._CAssign, frame, p: int) -> _Uniform:
        length = len(node.refs)
        pattern = self._pattern_cache.get(id(node))
        if pattern is None:
            packed = []
            for ref in node.refs:
                if ref.array_id >= (1 << _AID_BITS) or ref.ref_id >= (1 << _REF_BITS):
                    raise CodegenUnsupported("too many arrays/references to pack")
                packed.append(
                    int(ref.is_write)
                    | (ref.array_id << _AID_SHIFT)
                    | (ref.ref_id << _REF_SHIFT)
                )
            pattern = np.asarray(packed, dtype=np.int64)
            self._pattern_cache[id(node)] = pattern
        elems = np.empty((p, length), np.int64)
        for c, ref in enumerate(node.refs):
            v = self._value(ref.linform, frame, key=ref.ref_id)
            elems[:, c] = v
            if p == 0:
                continue
            lo, hi = (v, v) if isinstance(v, int) else (int(v.min()), int(v.max()))
            size = self.sizes[ref.array_id]
            if lo < 0 or hi >= size:
                from ..lang import AnalysisError

                raise AnalysisError(
                    f"out-of-bounds access: element {lo if lo < 0 else hi} of "
                    f"array #{ref.array_id} (size {size})"
                )
        return _Uniform(p, elems, pattern, 1)

    def _merge_body(self, blocks, p: int):
        if not blocks:
            return _empty(p)
        if len(blocks) == 1:
            return blocks[0]
        if all(isinstance(b, _Uniform) for b in blocks):
            mats, pats, ishift = [], [], 0
            for b in blocks:
                mats.append(b.elems)
                if self.with_instr and ishift:
                    pats.append(b.pattern + (ishift << _IOFS_SHIFT))
                else:
                    pats.append(b.pattern)
                ishift += b.icount
            return _Uniform(p, np.hstack(mats), np.concatenate(pats), ishift)
        gs = [_to_grouped(b) for b in blocks]
        counts = np.zeros(p, np.int64)
        icounts = np.zeros(p, np.int64)
        for g in gs:
            counts += g.counts
            icounts += g.icounts
        total = int(counts.sum())
        elems = np.empty(total, np.int64)
        pattern = np.empty(total, np.int64)
        starts = np.cumsum(counts) - counts
        placed = np.zeros(p, np.int64)
        iplaced = np.zeros(p, np.int64)
        for g in gs:
            n = len(g.elems)
            dest = np.repeat(starts + placed, g.counts) + _intra(g.counts, n)
            elems[dest] = g.elems
            if self.with_instr:
                pattern[dest] = g.pattern + (
                    np.repeat(iplaced, g.counts) << _IOFS_SHIFT
                )
            else:
                pattern[dest] = g.pattern
            placed += g.counts
            iplaced += g.icounts
        return _Grouped(p, counts, icounts, elems, pattern)

    def _emit_loop(self, node: _tg._CLoop, frame, p: int):
        lo = self._value(node.lower, frame)
        hi = self._value(node.upper, frame)
        if isinstance(lo, int) and isinstance(hi, int):
            trip = hi - lo + 1
            if trip <= 0 or p == 0:
                return _empty(p)
            sub = {v: np.repeat(a, trip) for v, a in frame.items()}
            sub[node.index] = np.tile(
                np.arange(lo, hi + 1, dtype=np.int64), p
            )
            b = self.emit_body(node.body, sub, p * trip)
            if isinstance(b, _Uniform):
                if trip * b.icount >= _MAX_ICOUNT:
                    raise CodegenUnsupported("instruction-offset packing overflow")
                length = b.elems.shape[1]
                pattern = np.tile(b.pattern, trip)
                if self.with_instr and b.icount and length:
                    pattern += (
                        np.repeat(
                            np.arange(trip, dtype=np.int64) * b.icount, length
                        )
                        << _IOFS_SHIFT
                    )
                return _Uniform(
                    p, b.elems.reshape(p, trip * length), pattern, trip * b.icount
                )
            counts = b.counts.reshape(p, trip).sum(axis=1)
            icounts = b.icounts.reshape(p, trip).sum(axis=1)
            if int(icounts.max(initial=0)) >= _MAX_ICOUNT:
                raise CodegenUnsupported("instruction-offset packing overflow")
            pattern = b.pattern
            if self.with_instr:
                ic = b.icounts.reshape(p, trip)
                shifts = (np.cumsum(ic, axis=1) - ic).reshape(-1)
                pattern = pattern + (np.repeat(shifts, b.counts) << _IOFS_SHIFT)
            return _Grouped(p, counts, icounts, b.elems, pattern)
        # data-dependent (e.g. triangular) bounds: per-instance trip counts
        lo_a = np.broadcast_to(np.asarray(lo, np.int64), (p,))
        hi_a = np.broadcast_to(np.asarray(hi, np.int64), (p,))
        trips = np.maximum(hi_a - lo_a + 1, 0)
        total = int(trips.sum())
        if total == 0:
            return _empty(p)
        intra = _intra(trips, total)
        sub = {v: np.repeat(a, trips) for v, a in frame.items()}
        sub[node.index] = np.repeat(lo_a, trips) + intra
        b = self.emit_body(node.body, sub, total)
        if isinstance(b, _Uniform):
            length = b.elems.shape[1]
            counts = trips * length
            icounts = trips * b.icount
            if int(icounts.max(initial=0)) >= _MAX_ICOUNT:
                raise CodegenUnsupported("instruction-offset packing overflow")
            pattern = np.tile(b.pattern, total)
            if self.with_instr and b.icount and length:
                pattern += (np.repeat(intra * b.icount, length) << _IOFS_SHIFT)
            return _Grouped(
                p, counts, icounts,
                np.ascontiguousarray(b.elems).reshape(-1), pattern,
            )
        parent = np.repeat(np.arange(p, dtype=np.int64), trips)
        counts = np.bincount(parent, weights=b.counts, minlength=p).astype(np.int64)
        icounts = np.bincount(parent, weights=b.icounts, minlength=p).astype(np.int64)
        if int(icounts.max(initial=0)) >= _MAX_ICOUNT:
            raise CodegenUnsupported("instruction-offset packing overflow")
        pattern = b.pattern
        if self.with_instr:
            g = np.cumsum(b.icounts) - b.icounts
            parent_base = np.cumsum(icounts) - icounts
            shifts = g - np.repeat(parent_base, trips)
            pattern = pattern + (np.repeat(shifts, b.counts) << _IOFS_SHIFT)
        return _Grouped(p, counts, icounts, b.elems, pattern)

    def _emit_guard(self, node: _tg._CGuard, frame, p: int):
        v = frame.get(node.index)
        if v is None:
            raise CodegenUnsupported(f"guard on unbound index {node.index!r}")
        mask = None
        for lo_f, hi_f in node.intervals:
            lo = self._value(lo_f, frame)
            hi = self._value(hi_f, frame)
            m = (v >= lo) & (v <= hi)
            mask = m if mask is None else (mask | m)
        taken = int(mask.sum())
        if taken == p:
            return self.emit_body(node.body, frame, p)
        if taken == 0:
            return self.emit_body(node.else_body, frame, p)
        inv = ~mask
        bt = _to_grouped(
            self.emit_body(node.body, {k: a[mask] for k, a in frame.items()}, taken)
        )
        bf = _to_grouped(
            self.emit_body(
                node.else_body, {k: a[inv] for k, a in frame.items()}, p - taken
            )
        )
        counts = np.empty(p, np.int64)
        icounts = np.empty(p, np.int64)
        counts[mask] = bt.counts
        counts[inv] = bf.counts
        icounts[mask] = bt.icounts
        icounts[inv] = bf.icounts
        total = int(counts.sum())
        elems = np.empty(total, np.int64)
        pattern = np.empty(total, np.int64)
        starts = np.cumsum(counts) - counts
        for m, g in ((mask, bt), (inv, bf)):
            n = len(g.elems)
            if n == 0:
                continue
            dest = np.repeat(starts[m], g.counts) + _intra(g.counts, n)
            elems[dest] = g.elems
            pattern[dest] = g.pattern
        return _Grouped(p, counts, icounts, elems, pattern)


def _flatten(block, with_instr: bool):
    """Unpack one top-level block (p == 1) into trace-ready arrays."""
    if isinstance(block, _Uniform):
        elems = np.ascontiguousarray(block.elems).reshape(-1)
        pattern = block.pattern
        icount = block.icount
    else:
        elems = block.elems
        pattern = block.pattern
        icount = int(block.icounts.sum())
    aids = ((pattern >> _AID_SHIFT) & ((1 << _AID_BITS) - 1)).astype(np.int32)
    refids = ((pattern >> _REF_SHIFT) & ((1 << _REF_BITS) - 1)).astype(np.int32)
    writes = (pattern & 1).astype(bool)
    iofs = (pattern >> _IOFS_SHIFT) if with_instr else None
    return aids, elems, writes, refids, iofs, icount


def trace_program(
    program,
    params: Mapping[str, int],
    steps: int = 1,
    with_instr: bool = False,
) -> AccessTrace:
    """Codegen twin of :func:`repro.interp.tracegen.trace_program`.

    Bit-for-bit identical output (pinned by ``tests/codegen``); any
    unsupported top-level nest falls back to the interpreter-based
    generator in place, preserving stream order.
    """
    bound = check_params(program, params)
    compiler = _tg._Compiler(program, bound)
    compiled = compiler.compile_body(program.body)
    emitter = _Emitter(compiler, with_instr)
    gen = _tg._Generator(compiled, compiler, with_instr)
    gen.env.update(bound)
    builder = gen.builder

    lowered: list[tuple[object, Optional[tuple]]] = []
    fallbacks: list[str] = []
    for node in compiled:
        try:
            lowered.append((node, _flatten(emitter.emit(node, {}, 1), with_instr)))
        except CodegenUnsupported as exc:
            lowered.append((node, None))
            fallbacks.append(exc.reason)
    metrics.inc("codegen.trace.nests", len(lowered))
    metrics.inc("codegen.trace.nests.compiled", len(lowered) - len(fallbacks))
    if fallbacks:
        metrics.inc("codegen.trace.nests.fallback", len(fallbacks))
        for reason in set(fallbacks):
            metrics.inc(f"codegen.trace.fallback[{reason}]")

    for _ in range(steps):
        for node, flat in lowered:
            if flat is None:
                gen.run_node(node)
                continue
            gen._flush()  # keep any buffered scalar accesses ordered first
            aids, elems, writes, refids, iofs, icount = flat
            instr = None
            if with_instr:
                instr = iofs + builder.instr_count
                builder.instr_count += icount
            builder.append(aids, elems, writes, refids, instr)
    return gen.finish()


def trace_stream(
    program,
    params: Mapping[str, int],
    steps: int = 1,
    layout=None,
):
    """Codegen twin of :func:`repro.interp.tracegen.trace_stream`."""
    from ..stream import AddressStream

    trace = trace_program(program, params, steps=steps)
    return AddressStream.from_trace(
        trace, layout, name=getattr(program, "name", "program"), source="codegen"
    )
