"""Reuse-driven execution — the paper's Fig. 2 algorithm.

A limit study of global computation fusion: replay the dynamic dependence
graph, giving priority to the instruction that *reuses the data of the
instruction just executed* (the inverse of Belady's policy).  Instructions
flow from the ideal parallel (dataflow) order; a FIFO queue sequentializes
preferred next-reuses, and ``ForceExecute`` recursively satisfies flow
dependences of instructions pulled forward.

The output is the reordered access trace, which feeds the same
reuse-distance machinery as the original program order — producing the
paired curves of Fig. 3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..interp.trace import AccessTrace
from .dataflow import DataflowInfo, build_dataflow, producers_by_instruction


@dataclass
class ReuseDrivenResult:
    """Execution order and the reordered trace."""

    execution_order: np.ndarray  # instruction ids in execution sequence
    trace: AccessTrace  # accesses permuted into execution order
    forced: int  # how many instructions ForceExecute pulled forward


def reuse_driven_order(trace: AccessTrace, info: DataflowInfo | None = None) -> ReuseDrivenResult:
    """Run the Fig. 2 algorithm over an instruction-annotated trace."""
    if info is None:
        info = build_dataflow(trace)
    n = info.num_instructions
    producers = producers_by_instruction(trace, info)
    next_use = info.next_use.tolist()
    executed = bytearray(n)
    sequence: list[int] = []
    queue: deque[int] = deque()
    forced = 0

    def force_execute(j: int) -> None:
        nonlocal forced
        # iterative post-order: execute all unexecuted producers first
        stack: list[tuple[int, bool]] = [(j, False)]
        while stack:
            node, expanded = stack.pop()
            if executed[node]:
                continue
            if expanded:
                executed[node] = 1
                sequence.append(node)
                queue.append(node)
                forced += 1
            else:
                stack.append((node, True))
                for p in producers[node]:
                    if not executed[p]:
                        stack.append((p, False))

    for i in info.ideal_order.tolist():
        if not executed[i]:
            executed[i] = 1
            sequence.append(i)
            queue.append(i)
        while queue:
            j = queue.popleft()
            nxt = next_use[j]
            if nxt != -1 and not executed[nxt]:
                force_execute(nxt)

    order = np.asarray(sequence, dtype=np.int64)
    # permute accesses: stable sort by execution position of their instruction
    exec_pos = np.empty(n, dtype=np.int64)
    exec_pos[order] = np.arange(n, dtype=np.int64)
    access_order = np.argsort(exec_pos[trace.instr_ids], kind="stable")
    return ReuseDrivenResult(
        execution_order=order,
        trace=trace.reordered(access_order),
        forced=forced,
    )
