"""Reuse-driven execution limit study (paper §2.2)."""

from .dataflow import DataflowInfo, build_dataflow, producers_by_instruction
from .driver import ReuseDrivenResult, reuse_driven_order

__all__ = [
    "DataflowInfo",
    "ReuseDrivenResult",
    "build_dataflow",
    "producers_by_instruction",
    "reuse_driven_order",
]
