"""Dynamic dataflow structure over an instruction-annotated trace.

Reuse-driven execution (§2.2) needs three things per dynamic instruction:

* its **producers** — the instructions that last wrote each datum it
  reads (flow dependences; the "ideal parallel machine" executes an
  instruction as soon as its operands are ready, i.e. storage is renamed
  and anti/output dependences vanish);
* its **dataflow level** — the cycle at which the ideal machine runs it;
* its **next use** — the closest later instruction (in program order)
  touching any datum it accesses, which is what the Fig. 2 algorithm
  chases.

All three are computed with vectorized passes over the access trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..interp.trace import AccessTrace
from ..lang import AnalysisError


@dataclass
class DataflowInfo:
    """Per-instruction dataflow facts derived from a trace."""

    num_instructions: int
    #: flow producer per *access* (-1 when none / the access is a write)
    producer_per_access: np.ndarray
    #: dataflow level per instruction (0 = no producers)
    level: np.ndarray
    #: next instruction (program order) sharing any datum; -1 if none
    next_use: np.ndarray
    #: ideal parallel execution order (level-major, program-order minor)
    ideal_order: np.ndarray


def build_dataflow(trace: AccessTrace) -> DataflowInfo:
    if trace.instr_ids is None:
        raise AnalysisError("trace was generated without instruction ids")
    keys = trace.global_keys()
    instr = trace.instr_ids
    writes = trace.writes
    n_acc = len(keys)
    n_instr = int(instr[-1]) + 1 if n_acc else 0

    # -- flow producers: last writer of each cell before each read ---------
    producer = np.full(n_acc, -1, dtype=np.int64)
    last_writer: dict[int, int] = {}
    keys_list = keys.tolist()
    instr_list = instr.tolist()
    writes_list = writes.tolist()
    for t in range(n_acc):
        key = keys_list[t]
        if writes_list[t]:
            last_writer[key] = instr_list[t]
        else:
            producer[t] = last_writer.get(key, -1)

    # -- dataflow levels ----------------------------------------------------
    # producers always precede consumers in program order, so one forward
    # sweep over instructions suffices.
    level = np.zeros(n_instr, dtype=np.int64)
    read_mask = producer >= 0
    cons_instr = instr[read_mask]
    prod_instr = producer[read_mask]
    # process consumers in program order; per-instruction max over producers
    order = np.argsort(cons_instr, kind="stable")
    for t in order.tolist():
        c = cons_instr[t]
        p = prod_instr[t]
        lv = level[p] + 1
        if lv > level[c]:
            level[c] = lv

    # -- next use -----------------------------------------------------------
    next_use = np.full(n_instr, -1, dtype=np.int64)
    next_of_key: dict[int, int] = {}
    for t in range(n_acc - 1, -1, -1):
        key = keys_list[t]
        i = instr_list[t]
        nxt = next_of_key.get(key, -1)
        if nxt != -1 and nxt != i:
            cur = next_use[i]
            if cur == -1 or nxt < cur:
                next_use[i] = nxt
        next_of_key[key] = i

    # -- ideal order ----------------------------------------------------------
    ideal = np.lexsort((np.arange(n_instr), level))
    return DataflowInfo(
        num_instructions=n_instr,
        producer_per_access=producer,
        level=level,
        next_use=next_use,
        ideal_order=ideal,
    )


def producers_by_instruction(trace: AccessTrace, info: DataflowInfo) -> list[list[int]]:
    """Deduplicated producer lists per instruction (ForceExecute support)."""
    out: list[list[int]] = [[] for _ in range(info.num_instructions)]
    mask = info.producer_per_access >= 0
    cons = trace.instr_ids[mask].tolist()
    prods = info.producer_per_access[mask].tolist()
    for c, p in zip(cons, prods):
        bucket = out[c]
        if not bucket or bucket[-1] != p:
            bucket.append(p)
    return out
