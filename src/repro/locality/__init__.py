"""Locality analyses: reuse distance, histograms, evadable reuses (§2.1)."""

from .evadable import (
    ClassStats,
    EvadableReport,
    classify_evadable,
    classify_evadable_program,
    classify_evadable_sizes,
    classify_evadable_stats,
    evadable_change,
    evadable_counts_by_threshold,
    mean_distance_growth,
    per_class_stats,
)
from .histogram import ReuseHistogram
from .reuse_distance import (
    COLD,
    hit_ratio,
    miss_count,
    miss_ratio_curve,
    reuse_distances,
    reuse_distances_naive,
)

__all__ = [
    "COLD",
    "ClassStats",
    "EvadableReport",
    "ReuseHistogram",
    "classify_evadable",
    "classify_evadable_program",
    "classify_evadable_sizes",
    "classify_evadable_stats",
    "evadable_change",
    "evadable_counts_by_threshold",
    "hit_ratio",
    "mean_distance_growth",
    "miss_count",
    "miss_ratio_curve",
    "per_class_stats",
    "reuse_distances",
    "reuse_distances_naive",
]
