"""Exact reuse-distance computation (paper §2.1).

The *reuse distance* of an access is the number of distinct data items
touched since the previous access to the same item; on a fully-associative
LRU cache of capacity C the access hits iff its distance is < C.

``reuse_distances`` implements Olken's classic algorithm: a Fenwick tree
over trace positions marks, for every currently-seen datum, the position
of its most recent access; the number of marks between the previous and
the current access to a datum *is* its reuse distance.  O(n log n) time,
O(n) space.  ``reuse_distances_naive`` is the quadratic oracle used by the
property-based tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Distance assigned to first-ever (cold) accesses.
COLD = -1


def reuse_distances(keys: Sequence[int] | np.ndarray) -> np.ndarray:
    """Exact LRU stack distance of every access in ``keys``.

    Parameters
    ----------
    keys:
        One integer per access identifying the datum — a raw array
        (e.g. :meth:`AccessTrace.global_keys`) or an
        :class:`~repro.stream.AddressStream`, whose address column is
        used via the array protocol.

    Returns
    -------
    ``int64`` array of the same length; ``COLD`` (−1) marks cold accesses.
    """
    arr = np.asarray(keys, dtype=np.int64)
    n = int(arr.size)
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    # Fenwick tree over 1-based positions; tree[i] sums marks.
    tree = [0] * (n + 1)
    last: dict[int, int] = {}
    keys_list = arr.tolist()  # Python ints: much faster in the hot loop
    for t0, key in enumerate(keys_list):
        t = t0 + 1
        prev = last.get(key)
        if prev is None:
            out[t0] = COLD
        else:
            # distance = (# marks in (prev, t-1]) = query(t-1) - query(prev)
            total = 0
            i = t - 1
            while i > 0:
                total += tree[i]
                i -= i & (-i)
            i = prev
            while i > 0:
                total -= tree[i]
                i -= i & (-i)
            out[t0] = total
            # unmark prev
            i = prev
            while i <= n:
                tree[i] -= 1
                i += i & (-i)
        # mark t as the new most-recent access of key
        i = t
        while i <= n:
            tree[i] += 1
            i += i & (-i)
        last[key] = t
    return out


def reuse_distances_naive(keys: Sequence[int]) -> list[int]:
    """Quadratic reference implementation (test oracle)."""
    out: list[int] = []
    seen: list[int] = []  # LRU stack, most recent first
    for key in keys:
        if key in seen:
            depth = seen.index(key)
            out.append(depth)
            seen.pop(depth)
        else:
            out.append(COLD)
        seen.insert(0, key)
    return out


def miss_count(distances: np.ndarray, capacity: int, count_cold: bool = True) -> int:
    """Misses of a fully-associative LRU cache of ``capacity`` *items*."""
    cold = int(np.count_nonzero(distances == COLD))
    cap_misses = int(np.count_nonzero(distances >= capacity))
    return cap_misses + (cold if count_cold else 0)


def hit_ratio(distances: np.ndarray, capacity: int) -> float:
    n = len(distances)
    if n == 0:
        return 1.0
    return 1.0 - miss_count(distances, capacity) / n


def miss_ratio_curve(
    distances: np.ndarray, capacities: Sequence[int]
) -> dict[int, float]:
    """Miss ratio of a fully-associative LRU cache at each capacity.

    The classic use of reuse-distance analysis (and the reason the paper
    measures distances rather than misses): one distance profile predicts
    the whole cache-size spectrum.  Computed in one pass from the
    cumulative distance histogram.
    """
    n = len(distances)
    if n == 0:
        return {int(c): 0.0 for c in capacities}
    d = np.asarray(distances)
    cold = int(np.count_nonzero(d == COLD))
    reuse = np.sort(d[d != COLD])
    out: dict[int, float] = {}
    for c in capacities:
        # misses: cold + reuses with distance >= capacity
        hits_below = int(np.searchsorted(reuse, c, side="left"))
        out[int(c)] = (cold + (len(reuse) - hits_below)) / n
    return out
