"""Log₂-binned reuse-distance histograms (paper Fig. 1 / Fig. 3).

A point at (x, y) in the paper's figures means y thousand references have
a reuse distance in [2^(x−1), 2^x); distance 0 gets its own bin at x = 0.
Cold (first-ever) accesses are tracked separately — they are compulsory
misses, not reuses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .reuse_distance import COLD


@dataclass
class ReuseHistogram:
    """Histogram of reuse distances in log₂ bins."""

    counts: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    cold: int = 0

    @staticmethod
    def from_distances(distances: np.ndarray) -> "ReuseHistogram":
        d = np.asarray(distances)
        cold = int(np.count_nonzero(d == COLD))
        reuse = d[d != COLD]
        if reuse.size == 0:
            return ReuseHistogram(np.zeros(1, dtype=np.int64), cold)
        bins = _bin_of(reuse)
        counts = np.bincount(bins)
        return ReuseHistogram(counts.astype(np.int64), cold)

    # -- stats -----------------------------------------------------------------

    @property
    def total_reuses(self) -> int:
        return int(self.counts.sum())

    @property
    def total(self) -> int:
        return self.total_reuses + self.cold

    def max_bin(self) -> int:
        return len(self.counts) - 1

    def count_ge(self, distance: int) -> int:
        """Number of reuses with distance >= ``distance`` (bin-resolution)."""
        if distance <= 0:
            return self.total_reuses
        start = _bin_of(np.asarray([distance]))[0]
        return int(self.counts[start:].sum())

    def fraction_ge(self, distance: int) -> float:
        if self.total_reuses == 0:
            return 0.0
        return self.count_ge(distance) / self.total_reuses

    def mean_log_distance(self) -> float:
        """Average bin index, weighted by count — tracks hill position."""
        if self.total_reuses == 0:
            return 0.0
        idx = np.arange(len(self.counts))
        return float((self.counts * idx).sum() / self.counts.sum())

    def series(self) -> list[tuple[int, int]]:
        """(bin, count) pairs — the curve the paper plots."""
        return [(k, int(c)) for k, c in enumerate(self.counts)]

    # -- presentation ------------------------------------------------------------

    def format_ascii(self, width: int = 50, label: str = "") -> str:
        """A printable curve: one row per bin, '#' bars scaled to ``width``."""
        lines = []
        if label:
            lines.append(label)
        peak = max(int(self.counts.max()), 1) if len(self.counts) else 1
        for k, c in enumerate(self.counts):
            bar = "#" * max(0, round(width * int(c) / peak))
            lo = 0 if k == 0 else 2 ** (k - 1)
            hi = 0 if k == 0 else 2**k - 1
            rng = "0" if k == 0 else f"{lo}..{hi}"
            lines.append(f"  2^{k:<2} ({rng:>14}): {int(c):>9} {bar}")
        lines.append(f"  cold: {self.cold}, reuses: {self.total_reuses}")
        return "\n".join(lines)

    def __add__(self, other: "ReuseHistogram") -> "ReuseHistogram":
        n = max(len(self.counts), len(other.counts))
        counts = np.zeros(n, dtype=np.int64)
        counts[: len(self.counts)] += self.counts
        counts[: len(other.counts)] += other.counts
        return ReuseHistogram(counts, self.cold + other.cold)


def _bin_of(distances: np.ndarray) -> np.ndarray:
    """Bin index: 0 for d == 0, floor(log2(d)) + 1 otherwise."""
    d = np.asarray(distances, dtype=np.int64)
    out = np.zeros(d.shape, dtype=np.int64)
    pos = d > 0
    out[pos] = np.floor(np.log2(d[pos])).astype(np.int64) + 1
    return out
