"""Evadable-reuse classification (paper §2.1–2.2).

The paper: *"We call those reuses whose reuse distance increases with the
input size evadable reuses."*  Operationally we classify per static
*reuse class* — the source reference performing the reuse — by measuring
mean reuse distance at two (or more) input sizes and testing growth:
a class is evadable when its mean distance grows by at least
``growth_factor`` while the data size grows, and the grown distance is
above a noise floor.  The evadable-reuse *count* of a run is the number of
dynamic reuses belonging to evadable classes at the largest size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..interp.trace import AccessTrace
from .reuse_distance import COLD, reuse_distances


@dataclass(frozen=True)
class ClassStats:
    """Per-reuse-class statistics at one input size."""

    ref_id: int
    reuses: int
    mean_distance: float


def per_class_stats(trace: AccessTrace, distances: np.ndarray | None = None) -> dict[int, ClassStats]:
    """Mean reuse distance per static reference (reuse class)."""
    if distances is None:
        distances = reuse_distances(trace.global_keys())
    mask = distances != COLD
    refs = trace.ref_ids[mask]
    dists = distances[mask]
    out: dict[int, ClassStats] = {}
    if refs.size == 0:
        return out
    order = np.argsort(refs, kind="stable")
    refs_sorted = refs[order]
    dists_sorted = dists[order]
    boundaries = np.flatnonzero(np.diff(refs_sorted)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [refs_sorted.size]))
    for s, e in zip(starts, ends):
        rid = int(refs_sorted[s])
        segment = dists_sorted[s:e]
        out[rid] = ClassStats(rid, int(e - s), float(segment.mean()))
    return out


@dataclass
class EvadableReport:
    """Result of the cross-size evadability analysis."""

    evadable_classes: frozenset[int]
    evadable_reuses: int  # dynamic count at the largest size
    total_reuses: int  # dynamic reuse count at the largest size
    stats_small: Mapping[int, ClassStats]
    stats_large: Mapping[int, ClassStats]

    @property
    def evadable_fraction(self) -> float:
        if self.total_reuses == 0:
            return 0.0
        return self.evadable_reuses / self.total_reuses


def classify_evadable(
    trace_small: AccessTrace,
    trace_large: AccessTrace,
    growth_factor: float = 1.5,
    noise_floor: float = 64.0,
    distances_small: np.ndarray | None = None,
    distances_large: np.ndarray | None = None,
) -> EvadableReport:
    """Classify reuse classes by comparing two input sizes.

    A class is evadable when ``mean_large >= growth_factor * mean_small``
    (treating classes absent at the small size as growing) and
    ``mean_large >= noise_floor``.  The floor keeps constant-but-jittery
    short reuses (the non-evadable hills of Fig. 3) out of the count.
    """
    small = per_class_stats(trace_small, distances_small)
    large = per_class_stats(trace_large, distances_large)
    return classify_evadable_stats(small, large, growth_factor, noise_floor)


def classify_evadable_stats(
    small: Mapping[int, ClassStats],
    large: Mapping[int, ClassStats],
    growth_factor: float = 1.5,
    noise_floor: float = 64.0,
) -> EvadableReport:
    """The two-size decision rule over already-computed class stats.

    Shared between the dynamic classifier (stats measured from traces)
    and the static analyzer (stats predicted from symbolic profiles), so
    both sides answer evadability with literally the same code.
    """
    evadable: set[int] = set()
    for rid, stat in large.items():
        if stat.mean_distance < noise_floor:
            continue
        base = small.get(rid)
        if base is None or base.mean_distance <= 0:
            evadable.add(rid)
        elif stat.mean_distance >= growth_factor * base.mean_distance:
            evadable.add(rid)
    evadable_reuses = sum(large[rid].reuses for rid in evadable)
    total = sum(s.reuses for s in large.values())
    return EvadableReport(
        evadable_classes=frozenset(evadable),
        evadable_reuses=evadable_reuses,
        total_reuses=total,
        stats_small=small,
        stats_large=large,
    )


def classify_evadable_program(
    program,
    small: Mapping[str, int],
    large: Mapping[str, int],
    steps: int = 1,
    growth_factor: float = 1.5,
    noise_floor: float = 64.0,
    method: str = "static",
) -> EvadableReport:
    """Classify a whole program's reuse classes — statically by default.

    The default ``method="static"`` predicts per-class stats from the
    symbolic reuse profile (:mod:`repro.static`) evaluated at the two
    sizes, so classification needs *no trace*; ``method="dynamic"``
    falls back to the original two-size regression over interpreted
    traces.  Both paths feed :func:`classify_evadable_stats`, so the
    decision rule is identical — only the provenance of the class
    means differs.
    """
    if method == "static":
        from ..analysis import cached_static_reuse

        profile = cached_static_reuse(program, steps=steps)
        return classify_evadable_stats(
            profile.class_stats(small),
            profile.class_stats(large),
            growth_factor,
            noise_floor,
        )
    if method == "dynamic":
        from ..interp.tracegen import trace_program

        trace_small = trace_program(program, dict(small), steps=steps)
        trace_large = trace_program(program, dict(large), steps=steps)
        return classify_evadable(
            trace_small, trace_large, growth_factor, noise_floor
        )
    raise ValueError(f"unknown method {method!r}: use 'static' or 'dynamic'")


def classify_evadable_sizes(
    traces: Sequence[AccessTrace],
    growth_factor: float = 1.5,
    noise_floor: float = 64.0,
) -> EvadableReport:
    """Classify across several input sizes, smallest to largest.

    A class that performs *zero* reuses at the smallest size (cold-only
    at small N — e.g. a boundary reference whose reuse partner only
    materializes once the array outgrows a seed region) used to be
    treated as "absent at small", which the two-size rule counts as
    evadable by default.  Here its baseline comes from the earliest size
    where the class actually reuses, so a class whose distance is flat
    from that point on classifies as non-evadable, with the guarded mean
    computation never touching the empty small-size segment.
    """
    if len(traces) < 2:
        raise ValueError("need at least two input sizes to classify growth")
    stats = [per_class_stats(t) for t in traces]
    large = stats[-1]
    # per class, the earliest size with a measured (non-empty) mean
    base: dict[int, ClassStats] = {}
    for level in stats[:-1]:
        for rid, stat in level.items():
            if rid not in base and stat.reuses > 0:
                base[rid] = stat
    return classify_evadable_stats(base, large, growth_factor, noise_floor)


def evadable_change(before: EvadableReport, after: EvadableReport) -> float:
    """Relative change in evadable-reuse count (negative = reduction).

    This is the number the paper reports in §2.2 (e.g. reuse-driven
    execution "reduced the number of evadable reuses by 63%" on SP).
    """
    if before.evadable_reuses == 0:
        return 0.0 if after.evadable_reuses == 0 else float("inf")
    return (after.evadable_reuses - before.evadable_reuses) / before.evadable_reuses


def mean_distance_growth(
    stats_small: Mapping[int, ClassStats],
    stats_large: Mapping[int, ClassStats],
) -> float:
    """Aggregate lengthening rate of reuse distances across sizes.

    Weighted mean of per-class growth ratios; the paper observes that
    reuse-driven execution also "slowed the lengthening rate" — this is
    the scalar that captures it.
    """
    total_weight = 0
    acc = 0.0
    for rid, stat in stats_large.items():
        base = stats_small.get(rid)
        if base is None or base.mean_distance <= 0 or stat.mean_distance <= 0:
            continue
        acc += stat.reuses * (stat.mean_distance / base.mean_distance)
        total_weight += stat.reuses
    return acc / total_weight if total_weight else 1.0


def evadable_counts_by_threshold(
    distances: np.ndarray, thresholds: Sequence[int]
) -> dict[int, int]:
    """Reuses with distance >= each threshold (size-sweep presentations)."""
    d = np.asarray(distances)
    reuse = d[d != COLD]
    return {int(t): int(np.count_nonzero(reuse >= t)) for t in thresholds}
