"""One engine-selection path for the harness and the CLI.

Historically the *simulation* engine (``fast``/``reference``) was
resolved in three places — ``measure_variant``, the memsim dispatchers,
and the CLI's ``--engine`` flag.  The codegen backend adds a second,
orthogonal axis: which *tracer* generates the address stream
(``codegen``/``interp``).  This module owns the whole grammar so every
entry point resolves specs identically:

``"fast"`` / ``"reference"``
    pick the simulation engine, keep the default tracer;
``"codegen"`` / ``"interp"``
    pick the tracer, keep the default simulation engine;
``"fast+interp"``, ``"codegen+reference"``, ...
    pick both, in either order, joined by ``+``.

Defaults come from ``REPRO_ENGINE`` (simulation, as before) and
``REPRO_TRACE_ENGINE`` (tracer).  The tracer default is ``codegen``:
the differential suite under ``tests/codegen/`` pins its traces
bit-for-bit to the interpreter's, and anything outside the supported
subset falls back to the interpreter per nest, so the fast path is
safe to prefer.  Cached *results* are keyed by the simulation engine
only — tracer choice never changes the bytes of a trace.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Union

from .lang import SimulationError
from .memsim import ENGINES as SIM_ENGINES

TRACE_ENGINES = ("codegen", "interp")


def default_sim_engine() -> str:
    """The simulation engine used when a spec names none.

    ``REPRO_ENGINE`` overrides the built-in ``fast`` default.  This is
    the single parser of that variable — ``memsim.default_engine``
    delegates here — so the CLI, :class:`~repro.harness.RunRequest`,
    and the raw simulators all reject an unknown value identically.
    """
    engine = os.environ.get("REPRO_ENGINE", "fast")
    if engine not in SIM_ENGINES:
        raise SimulationError(
            f"unknown REPRO_ENGINE {engine!r}; expected one of {SIM_ENGINES}"
        )
    return engine


def default_trace_engine() -> str:
    """The tracer used when a spec names none (env ``REPRO_TRACE_ENGINE``)."""
    tracer = os.environ.get("REPRO_TRACE_ENGINE", "codegen")
    if tracer not in TRACE_ENGINES:
        raise ValueError(
            f"unknown REPRO_TRACE_ENGINE {tracer!r}; expected one of {TRACE_ENGINES}"
        )
    return tracer


@dataclass(frozen=True)
class EngineSelection:
    """A fully resolved (simulation engine, tracer) pair."""

    sim: str
    tracer: str

    def spec(self) -> str:
        return f"{self.sim}+{self.tracer}"


def resolve_engines(
    spec: Union[None, str, EngineSelection] = None,
) -> EngineSelection:
    """Resolve an engine spec to a concrete :class:`EngineSelection`.

    Accepts None (all defaults), an already-resolved selection, or a
    spec string per the module grammar.  Raises ValueError on unknown
    tokens or a doubly-assigned axis.
    """
    if isinstance(spec, EngineSelection):
        return spec
    sim: Optional[str] = None
    tracer: Optional[str] = None
    if spec:
        for token in spec.split("+"):
            token = token.strip()
            if token in SIM_ENGINES:
                if sim is not None:
                    raise ValueError(f"simulation engine given twice in {spec!r}")
                sim = token
            elif token in TRACE_ENGINES:
                if tracer is not None:
                    raise ValueError(f"tracer given twice in {spec!r}")
                tracer = token
            else:
                raise ValueError(
                    f"unknown engine {token!r}; expected a simulation engine "
                    f"{SIM_ENGINES} and/or a tracer {TRACE_ENGINES}"
                )
    return EngineSelection(
        sim=sim or default_sim_engine(),
        tracer=tracer or default_trace_engine(),
    )


def engine_spec(text: str) -> str:
    """argparse ``type=`` hook: validate a spec, return it unchanged."""
    resolve_engines(text)
    return text
