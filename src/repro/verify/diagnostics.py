"""Structured diagnostics for the lint / pass-legality framework.

Every check in :mod:`repro.verify` reports problems as
:class:`Diagnostic` records collected in a :class:`DiagnosticBag`.  A
diagnostic pairs a stable machine-readable ``code`` with a location, the
offending statement's source text, and free-form ``details`` — for
dependence violations the details name the violated edge (kind, array
element, source and sink statement instances).  Every code (the ``V``,
``L``, and ``S`` families) is documented exactly once, in
:mod:`repro.verify.codes`; the CLI's help table and ``lint --explain``
render from that registry.

Bags render both human-readable text and JSON, so the CLI's ``--json``
mode and the raising :func:`DiagnosticBag.raise_if_errors` share one
representation.  The exception type reuses the language's
:class:`~repro.lang.errors.ValidationError` family via
:class:`VerificationError`, as the repo-wide convention is that every
error derives from ``ReproError``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Mapping, Optional

from ..lang import ValidationError, ValidationIssue
from ..obs import metrics


class Severity(Enum):
    """How bad a finding is.

    ``ERROR`` findings make verification fail; ``WARNING`` findings are
    suspicious but legal (lint exits non-zero for them only under
    ``--strict``); ``INFO`` findings are observations (e.g. an array that
    only ever reads its initial values).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the IR verifier or the pass-legality checker."""

    code: str  # stable machine id, e.g. "V001", "L101"
    severity: Severity
    message: str
    where: str = ""  # path-like location ("body[2]/for i")
    stmt: str = ""  # source text of the offending statement
    #: structured payload; for legality violations this names the
    #: dependence edge: kind, array, element, source, sink, pass
    details: Mapping[str, object] = field(default_factory=dict)

    def render(self) -> str:
        out = f"{self.severity}[{self.code}]"
        if self.where:
            out += f" {self.where}"
        out += f": {self.message}"
        if self.stmt:
            out += f"\n    in: {self.stmt}"
        for key, value in self.details.items():
            out += f"\n    {key}: {value}"
        return out

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "where": self.where,
            "stmt": self.stmt,
            "details": {k: str(v) for k, v in self.details.items()},
        }


class DiagnosticBag:
    """An ordered collection of diagnostics with rendering helpers."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: list[Diagnostic] = list(diagnostics)

    # -- collection ---------------------------------------------------------

    def add(
        self,
        code: str,
        severity: Severity,
        message: str,
        where: str = "",
        stmt: str = "",
        **details: object,
    ) -> Diagnostic:
        diag = Diagnostic(code, severity, message, where, stmt, dict(details))
        self.diagnostics.append(diag)
        metrics.inc(f"verify.diagnostics.{severity}")
        return diag

    def error(self, code: str, message: str, **kw: object) -> Diagnostic:
        return self.add(code, Severity.ERROR, message, **kw)

    def warning(self, code: str, message: str, **kw: object) -> Diagnostic:
        return self.add(code, Severity.WARNING, message, **kw)

    def info(self, code: str, message: str, **kw: object) -> Diagnostic:
        return self.add(code, Severity.INFO, message, **kw)

    def extend(self, other: "DiagnosticBag") -> None:
        self.diagnostics.extend(other.diagnostics)

    def add_issue(self, issue: ValidationIssue, code: str = "V001") -> Diagnostic:
        """Wrap a structural :class:`ValidationIssue` as an error."""
        diag = Diagnostic(code, Severity.ERROR, issue.message, where=issue.where)
        self.diagnostics.append(diag)
        metrics.inc(f"verify.diagnostics.{Severity.ERROR}")
        return diag

    # -- queries ------------------------------------------------------------

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    def has_errors(self) -> bool:
        return bool(self.errors)

    def counts(self) -> dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for d in self.diagnostics:
            out[str(d.severity)] += 1
        return out

    # -- rendering ----------------------------------------------------------

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        rank = {Severity.ERROR: 2, Severity.WARNING: 1, Severity.INFO: 0}
        keep = [d for d in self.diagnostics if rank[d.severity] >= rank[min_severity]]
        if not keep:
            return "clean: no findings"
        lines = [d.render() for d in keep]
        counts = self.counts()
        lines.append(
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        )
        return "\n".join(lines)

    def to_json(self, **extra: object) -> str:
        payload: dict[str, object] = {
            "counts": self.counts(),
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }
        payload.update(extra)
        return json.dumps(payload, indent=2, sort_keys=True)

    def raise_if_errors(self, context: str = "verification") -> None:
        if self.has_errors():
            raise VerificationError.from_bag(context, self)


class VerificationError(ValidationError):
    """Raised when verification finds errors; carries the full bag."""

    def __init__(self, message: str, bag: Optional[DiagnosticBag] = None) -> None:
        self.bag = bag or DiagnosticBag()
        issues = tuple(
            ValidationIssue(d.where or d.code, d.message) for d in self.bag.errors
        )
        super().__init__(message, issues)

    @classmethod
    def from_bag(cls, context: str, bag: DiagnosticBag) -> "VerificationError":
        errors = bag.errors
        lines = [f"{context}: {len(errors)} error(s)"]
        lines.extend(d.render() for d in errors)
        return cls("\n".join(lines), bag)


class PassLegalityError(VerificationError):
    """A transformation pass broke a dependence (or lost/duplicated work)."""
