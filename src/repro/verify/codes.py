"""The single registry of diagnostic codes.

Every stable diagnostic id — ``V`` (IR lint), ``L`` (pass legality and
registry contracts), ``S`` (static reuse analysis) — is declared here
once, with its family, default severity, and documentation.  The CLI's
``lint`` help table and ``lint --explain CODE`` render from this
registry; nothing else in the repo hand-lists codes.

Emitting sites stay free to construct diagnostics directly (the bag does
not require registration), but ``make check``'s self-lint asserts that
every code used anywhere in ``repro`` is registered here, so the table
cannot silently rot.
"""

from __future__ import annotations

from dataclasses import dataclass

from .diagnostics import Severity


@dataclass(frozen=True)
class CodeInfo:
    """One registered diagnostic code."""

    code: str
    severity: Severity
    summary: str  # one line, shown in tables
    doc: str  # full explanation, shown by ``lint --explain``

    @property
    def family(self) -> str:
        return self.code[0]


#: family letter -> what the family covers
FAMILIES: dict[str, str] = {
    "V": "IR verification (structure, ranges, def-use)",
    "L": "pass legality (dependences) and registry contracts",
    "S": "static reuse analysis (predictive locality lints)",
    "R": "parallelism analysis (races, DOALL certification)",
}

REGISTRY: dict[str, CodeInfo] = {}


def _register(
    code: str, severity: Severity, summary: str, doc: str
) -> None:
    assert code not in REGISTRY, f"duplicate diagnostic code {code}"
    REGISTRY[code] = CodeInfo(code, severity, summary, doc.strip())


def get_code(code: str) -> CodeInfo:
    """Look up a code; raises KeyError with the known codes listed."""
    try:
        return REGISTRY[code.upper()]
    except KeyError:
        raise KeyError(
            f"unknown diagnostic code {code!r}; known codes: "
            f"{', '.join(sorted(REGISTRY))}"
        ) from None


def all_codes() -> tuple[CodeInfo, ...]:
    return tuple(REGISTRY[c] for c in sorted(REGISTRY))


def format_code_table() -> str:
    """The one table of every code, grouped by two-character prefix.

    Prefix groups (``S3xx`` vs ``S4xx``) separate sub-families that a
    flat family listing used to run together.
    """
    by_prefix: dict[str, list[CodeInfo]] = {}
    for info in all_codes():
        by_prefix.setdefault(info.code[:2], []).append(info)
    lines: list[str] = []
    last_family = ""
    for fam in sorted(FAMILIES):
        for prefix in sorted(p for p in by_prefix if p[0] == fam):
            if fam != last_family:
                lines.append(f"{fam}xxx — {FAMILIES[fam]}:")
                last_family = fam
            lines.append(f"  {prefix}xx:")
            for info in by_prefix[prefix]:
                lines.append(
                    f"    {info.code}  [{info.severity}] {info.summary}"
                )
    return "\n".join(lines)


def explain_code(code: str) -> str:
    info = get_code(code)
    return (
        f"{info.code} [{info.severity}] — {info.summary}\n"
        f"family: {FAMILIES[info.family]}\n\n{info.doc}"
    )


# -- V: IR verification -------------------------------------------------------

_register(
    "V001", Severity.ERROR,
    "structural validation failure",
    """The program violates a structural invariant of the lang IR
(undeclared array or scalar, wrong subscript arity, non-affine loop
bound, duplicate declaration).  Raised by the validators in
repro.lang.validate and re-reported through the lint bag so every
finding shares one rendering.""",
)
_register(
    "V101", Severity.ERROR,
    "subscript can underflow its 1-based extent",
    """Interval analysis over the enclosing loop bounds proves the
subscript reaches a value below 1 (Fortran-style arrays are 1-based).
An always-underflowing subscript and a sometimes-underflowing one emit
the same code with different wording.""",
)
_register(
    "V102", Severity.ERROR,
    "subscript can overflow its declared extent",
    """Interval analysis proves the subscript exceeds the declared
extent along that dimension — under the published parameter assumptions
(params >= 8 unless a program declares tighter minimums).""",
)
_register(
    "V103", Severity.WARNING,
    "loop bound has fractional coefficients",
    """A loop bound's affine form has non-integral coefficients, so trip
counts may be non-integral; the interpreter truncates, which is usually
a symptom of a mis-derived bound.""",
)
_register(
    "V104", Severity.WARNING,
    "loop provably never executes",
    """The upper bound is provably below the lower bound under the
parameter assumptions.  Dead loops are legal but usually indicate a
transform dropped a guard or mangled a bound.""",
)
_register(
    "V105", Severity.WARNING,
    "guard interval is empty",
    """A guard's [lower:upper] membership interval is provably empty, so
the guarded body is unreachable.""",
)
_register(
    "V106", Severity.WARNING,
    "guard interval outside the index's range",
    """A guard interval lies entirely outside the guarded index's loop
range; the guard can never admit an iteration.""",
)
_register(
    "V201", Severity.WARNING,
    "scalar read but never assigned",
    """The scalar only ever reads its initial zero — either dead code or
a missing initialization.""",
)
_register(
    "V202", Severity.INFO,
    "scalar assigned but never read",
    """Dead scalar: scalars are not program outputs, so a write-only
scalar computes nothing observable.""",
)
_register(
    "V203", Severity.INFO,
    "array declared but never referenced",
    """The array occupies a declaration (and a layout slot) but no
statement touches it.""",
)
_register(
    "V204", Severity.INFO,
    "array is read-only",
    """Every access to the array is a read: the program only observes
its initial values.  Expected for coefficient arrays, suspicious for
work arrays.""",
)
_register(
    "V205", Severity.WARNING,
    "reads disjoint from every written region",
    """Region analysis proves the read regions of the array never
intersect its written regions — the reads observe initial values even
though the array *is* written elsewhere.""",
)
_register(
    "V301", Severity.INFO,
    "procedures analyzed at inlined call sites only",
    """The program still contains procedure declarations; the region
and def-use layers analyze the inlined body, so pre-inline programs get
shallower coverage.""",
)

# -- L: pass legality ---------------------------------------------------------

_register(
    "L000", Severity.INFO,
    "further diagnostics of a code suppressed",
    """The legality checker caps per-code output (MAX_DIAGS_PER_CODE);
this marker records that more findings of the preceding code exist.""",
)
_register(
    "L100", Severity.ERROR,
    "snapshots taken at different parameters",
    """A before/after legality comparison was attempted across different
input parameters; the dependence structures are not comparable.""",
)
_register(
    "L101", Severity.ERROR,
    "flow dependence violated",
    """A read observes a different write instance than before the pass
(true dependence reordered): the transformed program consumes a stale
or future value.""",
)
_register(
    "L102", Severity.ERROR,
    "write set changed",
    """A cell is written before the pass but never after (lost writes),
or after but never before (writes out of nowhere).""",
)
_register(
    "L103", Severity.ERROR,
    "write multiplicity changed",
    """A cell's write chain has a different length after the pass —
write instances were lost or duplicated.""",
)
_register(
    "L104", Severity.ERROR,
    "write computes a different value signature",
    """Strict certification: a write's operand signature differs across
the pass.  Relaxed passes (constant propagation, simplification) are
exempt because they legitimately rewrite arithmetic.""",
)
_register(
    "L105", Severity.ERROR,
    "output dependence violated",
    """Two writes to the same cell were reordered; the cell's final
value may differ.""",
)
_register(
    "L106", Severity.ERROR,
    "anti dependence violated",
    """A write reads a different set of cells than before the pass —
its operands were overwritten too early.""",
)
_register(
    "L201", Severity.WARNING,
    "pass declares no analysis-invalidation metadata",
    """A registered pass declares neither 'preserves' nor 'invalidates';
the analysis cache must conservatively treat it as invalidating every
analysis kind.""",
)

# -- S: static reuse analysis -------------------------------------------------

_register(
    "S301", Severity.WARNING,
    "evadable reuse (distance grows with input size)",
    """The static analyzer proves the reuse class re-touches its data at
a symbolic distance that grows with the program parameters (paper
§2.1).  Such reuses miss in any fixed-size cache once the input is
large enough — they are what fusion and regrouping exist to evade.""",
)
_register(
    "S302", Severity.WARNING,
    "fusion would contract a growing reuse distance",
    """A growing cross-nest reuse connects two top-level nests whose
outermost loops have provably equal bounds — the exact shape
reuse-based fusion (§2.3) collapses into a loop-carried reuse with
bounded distance.""",
)
_register(
    "S303", Severity.INFO,
    "regrouping candidate",
    """A nest streams several arrays and carries long-distance reuse;
data regrouping (§3) would interleave the arrays so one memory stream
fetches them together.""",
)
_register(
    "S401", Severity.WARNING,
    "nest falls back to the interpreter (codegen cannot vectorize it)",
    """The codegen trace backend cannot lower this loop nest to
vectorized numpy kernels — an un-inlined call, a non-affine subscript,
or a fractional stride keeps it outside the supported subset.  The
nest still runs (and traces) correctly through the interpreter, just an
order of magnitude slower; flagged so the silent fallback is visible
before a large measurement is launched.""",
)
_register(
    "S501", Severity.WARNING,
    "trace imported without geometry metadata",
    """An external address stream was imported without line-size or
element-size metadata (``repro trace import`` on a bare CSV address
list).  The simulator falls back to the shared machine geometry
(:mod:`repro.memsim.geometry`), which is correct for traces produced by
this repo but arbitrary for a foreign tracer — miss counts and the
bytes-moved report are only as meaningful as that assumption.  Export
with ``repro trace export`` (or add the ``# repro-address-stream``
metadata comment) to silence it.""",
)
_register(
    "S310", Severity.WARNING,
    "pass increased a symbolic reuse-distance bound",
    """Cross-checking static profiles before and after a pass found a
reuse class whose symbolic distance bound grew.  Legal but contrary to
the optimization's purpose; flagged so a regressing pipeline stage is
visible without running a trace.""",
)

# -- R: parallelism analysis --------------------------------------------------

_register(
    "R501", Severity.WARNING,
    "loop axis carries a data race (serial)",
    """The dependence-based parallelism analyzer proves two distinct
iterations of this loop axis touch the same array element with at least
one write, so the axis cannot run as a parallel (DOALL) loop.

The diagnostic carries a concrete witness pair in the format

    axis=a vs axis=b: <kind> on ARR[elem e] — ref_a @(env_a) / ref_b @(env_b)

where ``kind`` is write/write, write/read, or read/write, ``e`` is the
linearized column-major element both references touch, and the two
``env`` bindings give every loop variable of the colliding iteration
pair (equal on loops enclosing the axis, different on the axis itself).
Witnesses from exhaustive small-size checking are exact; witnesses
found over the rectangular hull of a triangular/guarded nest are marked
'(hull approximation)'.""",
)
_register(
    "R502", Severity.WARNING,
    "scalar dependence serializes a loop axis",
    """A scalar is written in one iteration of the axis and read (or
rewritten) in another, serializing the axis.  Unlike an array race this
is usually *privatizable*: if each iteration writes the scalar before
reading it, giving every thread its own copy restores a DOALL axis.
The witness-pair format matches R501 with the scalar shown in place of
an array element.""",
)
_register(
    "R503", Severity.INFO,
    "loop axis is a reduction",
    """Every cross-iteration conflict on this axis comes from
accumulation statements (``A[s] = A[s] op e`` or ``s = s op e`` with
``op`` associative), so the axis parallelizes with a privatized
accumulator and a combine step — reported as informational, not as a
race.""",
)
_register(
    "R520", Severity.WARNING,
    "false-sharing hotspot (distinct elements, same cache line)",
    """The static coherence analyzer predicts threads will invalidate
each other on cache lines where they touch *distinct* elements — no
value flows between them, the line just happens to hold both threads'
data.  Classic causes: a leading dimension that is not a whole number
of cache lines (so one thread's column tail and the next thread's
column head share a line), or chunked schedules slicing a contiguous
axis mid-line.

The diagnostic carries a concrete witness (thread pair, the two global
element keys with their offsets inside the shared line, and the
loop-variable bindings of the colliding iterations) plus, when the
array's leading extent is not line-aligned, the padding fix: growing
the leading dimension to the next multiple of the line size re-aligns
every column to a line boundary and removes the overlap.""",
)
_register(
    "R521", Severity.WARNING,
    "heavy true sharing across parallel nests",
    """Threads exchange the *same elements* (one writes, another reads
or rewrites) often enough that invalidation misses are a significant
miss source.  Within one DOALL nest this cannot happen — the race
analyzer proved iterations disjoint — so true sharing is a cross-nest
phenomenon: the producing nest partitioned its data over the threads
differently than the consuming nest (different parallel axis, shifted
subscripts, or a serial producer on thread 0).  Padding does not help;
re-aligning the partitions (same axis, same schedule) or fusing the
nests does.""",
)
_register(
    "R522", Severity.INFO,
    "sharing is schedule-sensitive",
    """Predicted invalidation misses differ by a large factor across
OpenMP schedules for the same program — typically block 'static' keeps
threads line-disjoint while 'static,1' (or 'guided') slices the axis
into chunks smaller than the data a line holds.  Reported so the
schedule choice is made deliberately; the message carries the per-
schedule invalidation counts.""",
)
_register(
    "R510", Severity.WARNING,
    "pass destroyed a parallel (DOALL) outer axis",
    """Comparing parallelism profiles before and after a pass shows a
top-level nest whose outermost axis was DOALL (or a reduction) before
the pass but is serial after it — typically loop fusion merging an
independent nest with one that carries a dependence (paper §2.3 trades
exactly this: fusion contracts reuse distance but may serialize the
fused loop).  Legal, but the lost parallelism is reported with the race
witness of the destroying dependence.""",
)
