"""Race reports and DOALL certification (the ``R5xx`` family).

The static parallelism analyzer classifies every loop axis as DOALL,
reduction, or serial; this module turns those verdicts into
diagnostics:

``R501 array-race``
    a serial axis whose witness is an array-element conflict — the
    concrete iteration pair is embedded in the message;
``R502 scalar-dependence``
    a serial axis serialized by a scalar (usually privatizable);
``R503 reduction``
    an informational marker for axes that parallelize with a privatized
    accumulator;
``R510 doall-destroyed``
    a pass comparison: a top-level nest's outermost axis was parallel
    before the pass and serial after it (the §2.3 fusion trade-off);
``R520 false-sharing``
    the static coherence analyzer predicts invalidation misses on lines
    where threads touch *distinct* elements — with a padding suggestion
    when the leading dimension is not line-aligned;
``R521 true-sharing``
    heavy cross-nest same-element exchange between threads;
``R522 schedule-sensitive``
    invalidation counts differ by a large factor across OpenMP
    schedules.

All codes flow through the shared :class:`DiagnosticBag`, so they
render, serialize, and baseline exactly like the ``V``/``L``/``S``
families.  The parallelism analyzer is imported lazily inside each
function (mirroring ``reuse_check``) to keep the verify <-> static
layering acyclic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional

from ..lang import Program
from .diagnostics import DiagnosticBag

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from ..static.parallelism import AxisVerdict, ParallelismProfile

#: per-code cap on individual diagnostics before summarizing
MAX_PER_CODE = 5


def _is_scalar_race(verdict: "AxisVerdict") -> bool:
    from ..static.parallelism import SCALAR_PREFIX

    w = verdict.witness
    return w is not None and w.array.startswith(SCALAR_PREFIX)


def lint_parallelism(profile: "ParallelismProfile") -> DiagnosticBag:
    """Emit the R50x family for an already-computed parallelism profile."""
    bag = DiagnosticBag()
    name = profile.program_name

    array_races = []
    scalar_races = []
    for v in profile.races:
        (scalar_races if _is_scalar_race(v) else array_races).append(v)

    def emit_races(code: str, races: list["AxisVerdict"], noun: str) -> None:
        for v in races[:MAX_PER_CODE]:
            where = f"{name}: nest {v.nest} loop {'.'.join(v.path)}"
            detail = (
                v.witness.describe() if v.witness is not None else v.reason
            )
            bag.warning(
                code,
                f"axis {v.index!r} is serial ({noun}): {detail}",
                where=where,
                nest=v.nest,
                axis=v.index,
                depth=v.depth,
                exact=v.exact,
            )
        if len(races) > MAX_PER_CODE:
            bag.info(
                code,
                f"{len(races) - MAX_PER_CODE} more serial axes with a "
                f"{noun} ({len(races)} total)",
                where=name,
            )

    emit_races("R501", array_races, "array race")
    emit_races("R502", scalar_races, "scalar dependence")

    reductions = list(profile.by_verdict("reduction"))
    for v in reductions[:MAX_PER_CODE]:
        targets = ", ".join(v.reduction_targets) or "accumulator"
        bag.info(
            "R503",
            f"axis {v.index!r} is a reduction over {targets}; parallelize "
            "with a privatized accumulator and a combine step",
            where=f"{name}: nest {v.nest} loop {'.'.join(v.path)}",
            nest=v.nest,
            axis=v.index,
            targets=targets,
        )
    if len(reductions) > MAX_PER_CODE:
        bag.info(
            "R503",
            f"{len(reductions) - MAX_PER_CODE} more reduction axes "
            f"({len(reductions)} total)",
            where=name,
        )
    return bag


def lint_races(
    program: Program,
    params: Optional[Mapping[str, int]] = None,
) -> DiagnosticBag:
    """Analyze ``program``'s parallelism and return its R50x diagnostics."""
    from ..static.parallelism import analyze_parallelism

    return lint_parallelism(analyze_parallelism(program, params))


def doall_preservation_check(
    before: Program,
    after: Program,
    pass_name: str = "",
    params: Optional[Mapping[str, int]] = None,
) -> DiagnosticBag:
    """Did a pass destroy a parallel (DOALL/reduction) outermost axis?

    Compares the parallelism profiles of ``before`` and ``after`` and
    emits ``R510`` when the count of top-level nests with a parallel
    outermost axis dropped — each newly-serial outermost axis in the
    transformed program is reported with its race witness.  Warnings
    only: serializing a loop is legal (fusion trades parallelism for
    reuse distance, paper §2.3), just worth surfacing.
    """
    from ..static.parallelism import analyze_parallelism

    bag = DiagnosticBag()
    p_before = analyze_parallelism(before, params)
    p_after = analyze_parallelism(after, params)
    n_before = len(p_before.parallel_nests())
    n_after = len(p_after.parallel_nests())
    if n_after >= n_before:
        return bag

    label = f"pass {pass_name!r}" if pass_name else "the pass"
    newly_serial = [
        v
        for v in p_after.verdicts
        if v.depth == 0 and v.verdict == "serial"
    ]
    for v in newly_serial[:MAX_PER_CODE]:
        detail = v.witness.describe() if v.witness is not None else v.reason
        bag.warning(
            "R510",
            f"{label} left only {n_after} of {n_before} parallel outer "
            f"axes; nest {v.nest} axis {v.index!r} is now serial: {detail}",
            where=f"{after.name}: nest {v.nest} loop {'.'.join(v.path)}",
            pass_name=pass_name,
            nest=v.nest,
            axis=v.index,
            parallel_before=n_before,
            parallel_after=n_after,
        )
    if not newly_serial:
        # parallel nests disappeared structurally (e.g. fused away)
        bag.warning(
            "R510",
            f"{label} reduced parallel top-level nests from {n_before} "
            f"to {n_after}",
            where=after.name,
            pass_name=pass_name,
            parallel_before=n_before,
            parallel_after=n_after,
        )
    return bag


# -- R52x: coherence and sharing ----------------------------------------------

#: invalidation-miss floor below which a sharing pattern is noise
R520_MIN_INVALIDATIONS = 4
R521_MIN_INVALIDATIONS = 4
#: R522 fires when schedules differ by this factor (and the worse one
#: clears the absolute floor)
R522_RATIO = 4.0
R522_MIN_INVALIDATIONS = 32

#: the alternate schedule R522 compares against — the finest static
#: chunking, which maximizes chunk-boundary sharing
R522_ALT_SCHEDULE = "static,1"


def _leading_pad(
    program: Program,
    array: str,
    line_elems: int,
    env: Mapping[str, int],
) -> str:
    """The padding suggestion for one array, or '' when already aligned."""
    for decl in program.arrays:
        if decl.name != array:
            continue
        extent = decl.shape(env)[0]
        if extent % line_elems == 0:
            return ""
        padded = -(-extent // line_elems) * line_elems
        return (
            f"pad {array}'s leading dimension from {extent} to {padded} "
            f"({line_elems} elements per line) to line-align the columns"
        )
    return ""


def lint_coherence(
    program: Program,
    params: Optional[Mapping[str, int]] = None,
    threads: int = 4,
    schedule: str = "static",
    steps: int = 1,
) -> DiagnosticBag:
    """Emit the R52x sharing lints from a static coherence profile.

    Advisory by design: programs outside the analyzer's affine subset
    (or too large to enumerate at the lint sizes) are skipped silently
    rather than failing the lint run.
    """
    from ..lang import AnalysisError
    from ..static.coherence import analyze_coherence

    bag = DiagnosticBag()
    try:
        profile = analyze_coherence(
            program, params, threads=threads, schedule=schedule,
            steps=steps,
        )
    except AnalysisError:
        return bag
    name = profile.program_name

    by_array = {
        w.array: w for w in reversed(profile.witnesses)
    }  # first witness per array wins
    for a in profile.sharing_arrays():
        witness = by_array.get(a.array)
        if a.false_invalidations >= R520_MIN_INVALIDATIONS:
            pad = _leading_pad(
                program, a.array, profile.line_elems,
                dict(profile.params),
            )
            detail = (
                f" — e.g. {witness.render()}"
                if witness is not None and witness.kind == "false"
                else ""
            )
            fix = f"; fix: {pad}" if pad else ""
            bag.warning(
                "R520",
                f"{a.false_invalidations} predicted invalidation "
                f"misses from false sharing on {a.array!r} "
                f"({a.false_lines} lines, {threads} threads, "
                f"{schedule} schedule){detail}{fix}",
                where=f"{name}: array {a.array}",
                array=a.array,
                false_invalidations=a.false_invalidations,
                false_lines=a.false_lines,
                threads=threads,
                schedule=schedule,
            )
        if a.true_invalidations >= R521_MIN_INVALIDATIONS:
            detail = (
                f" — e.g. {witness.render()}"
                if witness is not None and witness.kind == "true"
                else ""
            )
            bag.warning(
                "R521",
                f"{a.true_invalidations} predicted invalidation misses "
                f"from true sharing on {a.array!r} ({a.true_lines} "
                f"lines, {threads} threads): threads exchange the same "
                f"elements across nests — realign the producing and "
                f"consuming partitions or fuse the nests{detail}",
                where=f"{name}: array {a.array}",
                array=a.array,
                true_invalidations=a.true_invalidations,
                true_lines=a.true_lines,
                threads=threads,
                schedule=schedule,
            )

    if schedule != R522_ALT_SCHEDULE:
        try:
            alt = analyze_coherence(
                program, params, threads=threads,
                schedule=R522_ALT_SCHEDULE, steps=steps, witnesses=False,
            )
        except AnalysisError:
            return bag
        lo, hi = sorted(
            (profile.total_invalidations, alt.total_invalidations)
        )
        if hi >= R522_MIN_INVALIDATIONS and hi >= R522_RATIO * max(lo, 1):
            bag.info(
                "R522",
                f"invalidation misses are schedule-sensitive: "
                f"{profile.total_invalidations} under {schedule!r} vs "
                f"{alt.total_invalidations} under "
                f"{R522_ALT_SCHEDULE!r} ({threads} threads) — choose "
                f"the schedule deliberately",
                where=name,
                schedule_a=schedule,
                invalidations_a=profile.total_invalidations,
                schedule_b=R522_ALT_SCHEDULE,
                invalidations_b=alt.total_invalidations,
                threads=threads,
            )
    return bag
