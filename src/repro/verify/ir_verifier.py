"""Static IR verification ("lint") over :class:`~repro.lang.Program`.

Four layers of checks, all symbolic (no execution):

1. **Structural invariants** — the collect-all form of
   :func:`repro.lang.validate.validation_issues` (undeclared names, arity,
   affine subscripts, index shadowing, guard scoping).
2. **Loop-bound sanity** — loops and guard intervals that provably never
   execute under the parameter assumptions (``upper < lower``), and
   non-integral affine bounds.
3. **Subscript-in-bounds** — for every array reference, the symbolic
   range of each affine subscript over the enclosing loop bounds (guard
   intervals narrow the range, like the footprint analysis of
   :mod:`repro.analysis.access`) is compared against ``1 .. extent``;
   provable underflow/overflow is an error.  Indeterminate comparisons
   stay silent — the checker is conservative in what it *reports*, never
   in what it certifies.
4. **Def-use hygiene** — scalars read but never assigned (they read the
   interpreter's initial zero), scalars assigned but never read (dead
   state: scalars are not program outputs), arrays never referenced, and
   array regions whose reads are provably disjoint from every written
   region (they only ever observe initial values).

Findings come back in a :class:`DiagnosticBag`; ``lint_program`` never
raises, so callers choose whether errors are fatal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from ..lang import (
    Affine,
    ArrayRef,
    Assign,
    Assumptions,
    CallStmt,
    DEFAULT_PARAM_MIN,
    Guard,
    Loop,
    NotAffineError,
    Program,
    ScalarRef,
    Stmt,
    validation_issues,
)
from .diagnostics import DiagnosticBag


@dataclass(frozen=True)
class IndexRange:
    """The affine [lo, hi] an in-scope loop index ranges over."""

    name: str
    lo: Affine
    hi: Affine


def affine_range(
    form: Affine, scope: Sequence[IndexRange]
) -> tuple[Affine, Affine]:
    """Symbolic [min, max] of ``form`` over the in-scope index ranges.

    Substitutes index variables innermost-first, picking each index's
    lower or upper bound by the sign of its coefficient (classic interval
    arithmetic over affine forms).  Bounds of inner indices may mention
    outer indices (triangular loops); those are resolved by later
    substitutions.  The result mentions only program parameters.
    """
    lo, hi = form, form
    for rng in reversed(scope):  # innermost index first
        c_lo = lo.coeff(rng.name)
        if c_lo != 0:
            lo = lo.substitute({rng.name: rng.lo if c_lo > 0 else rng.hi})
        c_hi = hi.coeff(rng.name)
        if c_hi != 0:
            hi = hi.substitute({rng.name: rng.hi if c_hi > 0 else rng.lo})
    return lo, hi


class _Linter:
    def __init__(self, program: Program, assume: Assumptions) -> None:
        self.program = program
        self.assume = assume
        self.bag = DiagnosticBag()
        self.scope: list[IndexRange] = []
        self.arrays = {a.name: a for a in program.arrays}
        # def-use bookkeeping (walk order approximates execution order)
        self.scalar_reads: dict[str, str] = {}  # name -> first location
        self.scalar_writes: dict[str, str] = {}
        self.array_touched: set[str] = set()
        #: per array: list of per-dim (lo, hi) region hulls
        self.read_regions: dict[str, list[tuple[tuple[Affine, Affine], ...]]] = {}
        self.write_regions: dict[str, list[tuple[tuple[Affine, Affine], ...]]] = {}

    # -- per-reference checks -----------------------------------------------

    def check_ref(self, ref: ArrayRef, is_write: bool, where: str, stmt: str) -> None:
        decl = self.arrays.get(ref.array)
        if decl is None:
            return  # structural layer already reported it
        self.array_touched.add(ref.array)
        if len(ref.indices) != decl.ndim:
            return
        region: list[tuple[Affine, Affine]] = []
        extents = decl.extent_affines()
        for k, sub in enumerate(ref.indices):
            try:
                form = sub.affine()
            except NotAffineError:
                return  # structural layer already reported it
            lo, hi = affine_range(form, self.scope)
            region.append((lo, hi))
            if hi.compare(1, self.assume) == -1:
                self.bag.error(
                    "V101",
                    f"subscript {k} of {ref.array!r} is always "
                    f"{hi} < 1 (underflow)",
                    where=where,
                    stmt=stmt,
                    subscript=str(form),
                )
            elif lo.compare(1, self.assume) == -1:
                self.bag.error(
                    "V101",
                    f"subscript {k} of {ref.array!r} can reach "
                    f"{lo} < 1 (underflow)",
                    where=where,
                    stmt=stmt,
                    subscript=str(form),
                )
            if lo.compare(extents[k], self.assume) == 1:
                self.bag.error(
                    "V102",
                    f"subscript {k} of {ref.array!r} is always "
                    f"{lo} > extent {extents[k]} (overflow)",
                    where=where,
                    stmt=stmt,
                    subscript=str(form),
                )
            elif hi.compare(extents[k], self.assume) == 1:
                self.bag.error(
                    "V102",
                    f"subscript {k} of {ref.array!r} can reach "
                    f"{hi} > extent {extents[k]} (overflow)",
                    where=where,
                    stmt=stmt,
                    subscript=str(form),
                )
        target = self.write_regions if is_write else self.read_regions
        target.setdefault(ref.array, []).append(tuple(region))

    def note_expr(self, expr, where: str, stmt: str) -> None:
        """Record reads (arrays + scalars) appearing in an expression."""
        for node in expr.walk():
            if isinstance(node, ArrayRef):
                self.check_ref(node, False, where, stmt)
            elif isinstance(node, ScalarRef):
                self.scalar_reads.setdefault(node.name, where)

    # -- statements -----------------------------------------------------------

    def check_stmt(self, stmt: Stmt, where: str) -> None:
        if isinstance(stmt, Assign):
            text = str(stmt)
            self.note_expr(stmt.expr, f"{where} rhs", text)
            if isinstance(stmt.target, ArrayRef):
                for sub in stmt.target.indices:
                    self.note_expr(sub, f"{where} lhs", text)
                self.check_ref(stmt.target, True, f"{where} lhs", text)
            else:
                self.scalar_writes.setdefault(stmt.target.name, where)
        elif isinstance(stmt, Loop):
            self.check_loop(stmt, where)
        elif isinstance(stmt, Guard):
            self.check_guard(stmt, where)
        elif isinstance(stmt, CallStmt):
            for a in stmt.args:
                self.note_expr(a, f"{where} arg", str(stmt))

    def check_loop(self, loop: Loop, where: str) -> None:
        try:
            lo = loop.lower.affine()
            hi = loop.upper.affine()
        except NotAffineError:
            return  # structural layer already reported it
        for name, form in (("lower", lo), ("upper", hi)):
            if any(c.denominator != 1 for _, c in form.coeffs) or (
                form.const.denominator != 1
            ):
                self.bag.warning(
                    "V103",
                    f"{name} bound {form} has fractional coefficients; "
                    "trip counts may be non-integral",
                    where=where,
                    stmt=str(loop),
                )
        if hi.compare(lo, self.assume) == -1:
            self.bag.warning(
                "V104",
                f"loop never executes: upper bound {hi} < lower bound {lo} "
                f"under the assumption params >= {self.assume.default}",
                where=where,
                stmt=str(loop),
            )
        self.scope.append(IndexRange(loop.index, lo, hi))
        for k, s in enumerate(loop.body):
            self.check_stmt(s, f"{where}/for {loop.index}[{k}]")
        self.scope.pop()

    def check_guard(self, guard: Guard, where: str) -> None:
        rng = next((r for r in self.scope if r.name == guard.index), None)
        narrowed = False
        for iv in guard.intervals:
            if iv.upper.compare(iv.lower, self.assume) == -1:
                self.bag.warning(
                    "V105",
                    f"guard interval [{iv.lower}:{iv.upper}] is empty",
                    where=where,
                    stmt=str(guard),
                )
            if rng is not None:
                if iv.upper.compare(rng.lo, self.assume) == -1 or (
                    iv.lower.compare(rng.hi, self.assume) == 1
                ):
                    self.bag.warning(
                        "V106",
                        f"guard interval [{iv.lower}:{iv.upper}] lies outside "
                        f"{guard.index}'s range [{rng.lo}:{rng.hi}]; "
                        "body never executes",
                        where=where,
                        stmt=str(guard),
                    )
        # a single interval narrows the index range inside the body,
        # exactly like the footprint collector
        if rng is not None and len(guard.intervals) == 1:
            iv = guard.intervals[0]
            k = self.scope.index(rng)
            self.scope[k] = IndexRange(guard.index, iv.lower, iv.upper)
            narrowed = True
        for k, s in enumerate(guard.body):
            self.check_stmt(s, f"{where}/when {guard.index}[{k}]")
        if narrowed:
            kk = next(
                i for i, r in enumerate(self.scope) if r.name == guard.index
            )
            self.scope[kk] = rng
        for k, s in enumerate(guard.else_body):
            self.check_stmt(s, f"{where}/else[{k}]")

    # -- whole-program def-use reports ----------------------------------------

    def _regions_overlap(
        self,
        a: tuple[tuple[Affine, Affine], ...],
        b: tuple[tuple[Affine, Affine], ...],
    ) -> bool:
        """Conservative overlap test: only a provable per-dim disjointness
        on some dimension makes two regions disjoint."""
        for (alo, ahi), (blo, bhi) in zip(a, b):
            if ahi.compare(blo, self.assume) == -1:
                return False
            if bhi.compare(alo, self.assume) == -1:
                return False
        return True

    def finish(self) -> None:
        for name, where in sorted(self.scalar_reads.items()):
            if name not in self.scalar_writes:
                self.bag.warning(
                    "V201",
                    f"scalar {name!r} is read but never assigned "
                    "(reads the initial zero)",
                    where=where,
                )
        for name, where in sorted(self.scalar_writes.items()):
            if name not in self.scalar_reads:
                self.bag.warning(
                    "V202",
                    f"scalar {name!r} is assigned but never read "
                    "(dead scalar: scalars are not program outputs)",
                    where=where,
                )
        for decl in self.program.arrays:
            if decl.name not in self.array_touched:
                self.bag.warning(
                    "V203", f"array {decl.name!r} is declared but never referenced"
                )
        for name, reads in sorted(self.read_regions.items()):
            writes = self.write_regions.get(name, [])
            if not writes:
                self.bag.info(
                    "V204",
                    f"array {name!r} is read-only (observes initial values only)",
                )
                continue
            for region in reads:
                if not any(self._regions_overlap(region, w) for w in writes):
                    spans = ", ".join(f"{lo}:{hi}" for lo, hi in region)
                    self.bag.info(
                        "V205",
                        f"reads of {name}[{spans}] are disjoint from every "
                        "written region (observe initial values only)",
                    )
                    break

    def run(self) -> DiagnosticBag:
        for issue in validation_issues(self.program):
            self.bag.add_issue(issue, code="V001")
        if self.bag.has_errors():
            # structurally broken: range/def-use layers would crash or lie
            return self.bag
        if self.program.procedures:
            self.bag.info(
                "V301",
                f"{len(self.program.procedures)} procedure(s) present; "
                "region analysis covers the inlined call sites only",
            )
        for k, stmt in enumerate(self.program.body):
            self.check_stmt(stmt, f"body[{k}]")
        self.finish()
        return self.bag


def lint_program(
    program: Program,
    assume: Union[int, Assumptions, None] = None,
) -> DiagnosticBag:
    """Run every static check over ``program``; returns the findings.

    ``assume`` supplies the parameter lower bound for symbolic
    comparisons (default: :data:`~repro.lang.DEFAULT_PARAM_MIN`, the same
    assumption the fusion legality tests use).
    """
    if assume is None:
        assume = Assumptions(default=DEFAULT_PARAM_MIN)
    elif isinstance(assume, int):
        assume = Assumptions(default=assume)
    return _Linter(program, assume).run()
