"""Symbolic reuse-bound regression check for compiler passes (S310).

The legality checker proves a pass preserved *correctness*; this check
watches the pass's *purpose*: a locality transformation should never
push a reuse class's symbolic distance bound upward.  Both sides are
static — no trace, no interpretation — so the check is cheap enough for
``PassVerifier`` to run after every certified pass when opted in.

Granularity is per array, not per reference: passes renumber references
freely (distribution, fusion), but an array's *worst* reuse-distance
bound is stable under renaming and is exactly the quantity fusion and
regrouping exist to shrink.
"""

from __future__ import annotations

from typing import Optional, Union

from ..lang import Assumptions, Program
from .diagnostics import DiagnosticBag

#: parameter probe for comparing symbolic bounds numerically
_PROBE = 10**4

#: an after-bound must exceed before x slack to be reported — hull
#: conservatism wobbles across structural rewrites; a genuine regression
#: (bounded -> growing, or a higher-degree bound) clears 2x at the probe
_SLACK = 2.0


def array_distance_bounds(
    program: Program,
    steps: int = 1,
    assume: Union[int, Assumptions, None] = None,
) -> dict[str, float]:
    """Per-array worst symbolic reuse-distance bound, at the probe size."""
    from ..static import analyze_program  # lazy: keep layering acyclic

    profile = analyze_program(program, steps=steps, assume=assume)
    env = {p: _PROBE for p in profile.model.params}
    out: dict[str, float] = {}
    for cp in profile.classes:
        worst = 0.0
        for comp in cp.components:
            count = float(comp.count.evaluate(env))
            if count <= 0:
                continue
            worst = max(worst, float(comp.bound.evaluate(env)))
        if worst > 0:
            out[cp.ref.array] = max(out.get(cp.ref.array, 0.0), worst)
    return out


def reuse_bound_check(
    before: Program,
    after: Program,
    pass_name: str = "",
    steps: int = 1,
    assume: Union[int, Assumptions, None] = None,
) -> DiagnosticBag:
    """S310 warnings for arrays whose worst distance bound grew.

    Only arrays present on both sides are compared (passes may split,
    merge, or retire arrays; new names have no baseline to regress
    from).  Warnings never fail certification — a pass may legally trade
    one array's locality for another's — but they make a regressing
    stage visible without a trace.
    """
    bag = DiagnosticBag()
    bounds_before = array_distance_bounds(before, steps, assume)
    bounds_after = array_distance_bounds(after, steps, assume)
    label = f" after pass {pass_name!r}" if pass_name else ""
    for name in sorted(set(bounds_before) & set(bounds_after)):
        b, a = bounds_before[name], bounds_after[name]
        if a > b * _SLACK:
            bag.warning(
                "S310",
                f"worst reuse-distance bound of {name!r} grew "
                f"{b:.0f} -> {a:.0f} at the probe size{label}",
                where=name,
                before=b,
                after=a,
                **({"pass": pass_name} if pass_name else {}),
            )
    return bag
