"""Pass-legality certification from access snapshots.

``check_legality(before, after)`` compares two :class:`Snapshot` objects
and certifies that the transformation between them preserved the
program's dependence structure.  The certificate is instance-level: for
every memory cell, both programs must perform the *same chain of writes*
(same count, same constant-folded value signatures in the same order),
and every write instance must observe the *same producing write epoch*
for each cell it reads.

Why this implies dependence preservation:

* equal read epochs ⇒ every read-after-write (flow) edge reaches the
  same producer — a statement hoisted above its producer would observe
  an earlier epoch;
* equal write chains per cell ⇒ write-after-write (output) edges keep
  their order — swapped writes show up as swapped signatures;
* the two together ⇒ write-after-read (anti) edges hold: a write moved
  ahead of a read it used to follow bumps the epoch that read observes.

Violations become structured diagnostics that name the offending
dependence edge — kind (flow/output), the array element, and the source
and sink statement instances with their iteration vectors.

Two strictness modes:

* ``strict=True`` (default) — full certification, for passes that only
  restructure control flow and substitute indices (inlining, unrolling,
  peeling, distribution, fusion, alignment, embedding, array splitting).
* ``strict=False`` — for passes that legitimately rewrite arithmetic
  (``simplify_program``, ``propagate_scalar_constants``): scalar cells
  are exempt and value signatures are not compared, but array write
  chains must keep their length and their array-read epochs.

:class:`PassVerifier` packages the snapshot-diff-raise cycle for the
pipeline's opt-in ``verify=True`` mode.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..lang import Program
from .diagnostics import DiagnosticBag, PassLegalityError
from .snapshot import (
    Snapshot,
    WriteInstance,
    format_cell,
    is_scalar_cell,
    snapshot_program,
)

#: cap per-category diagnostics so a badly broken pass reports the
#: pattern, not a million instances of it
MAX_DIAGS_PER_CODE = 5

#: passes whose whole point is rewriting arithmetic; their legality is
#: checked in relaxed mode (array dataflow only)
RELAXED_PASSES = frozenset({"constprop", "propagate_scalar_constants", "simplify",
                            "simplify_program"})


def _sig_str(sig: object) -> str:
    if isinstance(sig, tuple):
        if sig[0] == "c":
            return str(sig[1])
        if sig[0] == "r":
            return f"read({format_cell(sig[1])}#{sig[2]})"
        if sig[0] == "b":
            return f"({_sig_str(sig[2])} {sig[1]} {_sig_str(sig[3])})"
        if sig[0] == "u":
            return f"(-{_sig_str(sig[1])})"
        if sig[0] == "f":
            return f"{sig[1]}({', '.join(_sig_str(a) for a in sig[2:])})"
    return str(sig)


class _Budget:
    """Per-code diagnostic budget with an overflow note."""

    def __init__(self, bag: DiagnosticBag) -> None:
        self.bag = bag
        self.counts: dict[str, int] = {}

    def error(self, code: str, message: str, **kw: object) -> None:
        n = self.counts.get(code, 0)
        self.counts[code] = n + 1
        if n < MAX_DIAGS_PER_CODE:
            self.bag.error(code, message, **kw)
        elif n == MAX_DIAGS_PER_CODE:
            self.bag.info(
                "L000", f"further {code} diagnostics suppressed "
                f"(first {MAX_DIAGS_PER_CODE} shown)"
            )


def _array_reads(inst: WriteInstance) -> tuple:
    return tuple((c, e) for c, e in inst.reads if not is_scalar_cell(c))


def _check_chain(
    cell,
    bchain: list[WriteInstance],
    achain: list[WriteInstance],
    pass_name: str,
    strict: bool,
    out: _Budget,
    source_of,
) -> None:
    where = format_cell(cell)
    if len(bchain) != len(achain):
        out.error(
            "L103",
            f"cell {where} written {len(bchain)} time(s) before the pass "
            f"but {len(achain)} after — write instances were "
            + ("lost" if len(achain) < len(bchain) else "duplicated"),
            where=where,
            stmt=(achain or bchain)[-1].stmt,
            **{"pass": pass_name},
        )
        return
    for epoch, (b, a) in enumerate(zip(bchain, achain)):
        # read epochs first: a mismatch here IS a broken dependence edge,
        # and should be reported as such (not as a value difference, even
        # though the epoch is also embedded in the value signature)
        breads = b.reads if strict else _array_reads(b)
        areads = a.reads if strict else _array_reads(a)
        if breads != areads:
            bmap = dict(breads)
            for rcell, repoch in areads:
                want = bmap.get(rcell)
                if want is None or want == repoch:
                    continue
                relt = format_cell(rcell)
                out.error(
                    "L101",
                    f"flow dependence on {relt} violated: {a.location()!r} "
                    f"must observe write #{want} of {relt} but now observes "
                    f"#{repoch} "
                    + (
                        "(it reads the value too early — the producing "
                        "write has not happened yet)"
                        if repoch < want
                        else "(an intervening write clobbered the value — "
                        "an anti dependence was reversed)"
                    ),
                    where=relt,
                    stmt=a.stmt,
                    kind="flow",
                    element=relt,
                    source=(
                        "initial value" if want < 0 else source_of(rcell, want)
                    ),
                    sink=a.location(),
                    observed=f"write #{repoch}",
                    expected=f"write #{want}",
                    **{"pass": pass_name},
                )
                return
            if strict:
                out.error(
                    "L106",
                    f"write #{epoch} to {where} reads a different set of "
                    "cells than before the pass",
                    where=where,
                    stmt=a.stmt,
                    before=", ".join(
                        f"{format_cell(c)}#{e}" for c, e in breads
                    ),
                    after=", ".join(
                        f"{format_cell(c)}#{e}" for c, e in areads
                    ),
                    **{"pass": pass_name},
                )
                return
        if strict and b.sig != a.sig:
            # same multiset of signatures but a different order at this
            # epoch means the writes were reordered: an output dependence
            # on this cell was reversed.
            bsigs = sorted(_sig_str(w.sig) for w in bchain)
            asigs = sorted(_sig_str(w.sig) for w in achain)
            if bsigs == asigs:
                out.error(
                    "L105",
                    f"output dependence on {where} violated: write #{epoch} "
                    f"was {b.location()!r} but is now {a.location()!r} "
                    "(writes to this cell were reordered)",
                    where=where,
                    stmt=a.stmt,
                    kind="output",
                    element=where,
                    source=b.location(),
                    sink=a.location(),
                    **{"pass": pass_name},
                )
            else:
                out.error(
                    "L104",
                    f"write #{epoch} to {where} computes a different value: "
                    f"{_sig_str(b.sig)} before vs {_sig_str(a.sig)} after",
                    where=where,
                    stmt=a.stmt,
                    source=b.location(),
                    sink=a.location(),
                    **{"pass": pass_name},
                )
            return


def check_legality(
    before: Snapshot,
    after: Snapshot,
    pass_name: str = "transform",
    strict: bool = True,
) -> DiagnosticBag:
    """Certify that ``after`` preserves ``before``'s dependence structure.

    Returns the diagnostics (empty bag = certified legal).  Never raises;
    use :meth:`DiagnosticBag.raise_if_errors` or :class:`PassVerifier`
    when violations should be fatal.
    """
    bag = DiagnosticBag()
    out = _Budget(bag)
    if before.params != after.params:
        bag.error(
            "L100",
            f"snapshots taken at different parameters: {before.params} "
            f"vs {after.params}",
            **{"pass": pass_name},
        )
        return bag

    def skip(cell) -> bool:
        return not strict and is_scalar_cell(cell)

    bcells = {c for c in before.cells() if not skip(c)}
    acells = {c for c in after.cells() if not skip(c)}
    for cell in sorted(bcells - acells):
        out.error(
            "L102",
            f"cell {format_cell(cell)} is written before the pass but "
            "never after (writes were lost)",
            where=format_cell(cell),
            stmt=before.writes[cell][-1].stmt,
            **{"pass": pass_name},
        )
    for cell in sorted(acells - bcells):
        out.error(
            "L102",
            f"cell {format_cell(cell)} is written after the pass but "
            "never before (writes appeared out of nowhere)",
            where=format_cell(cell),
            stmt=after.writes[cell][-1].stmt,
            **{"pass": pass_name},
        )

    def source_of(cell, epoch):
        chain = before.writes.get(cell)
        if chain and 0 <= epoch < len(chain):
            return chain[epoch].location()
        return f"write #{epoch}"

    for cell in sorted(bcells & acells):
        _check_chain(
            cell,
            before.writes[cell],
            after.writes[cell],
            pass_name,
            strict,
            out,
            source_of,
        )
    return bag


def verify_pass(
    before: Program,
    after: Program,
    pass_name: str = "transform",
    params: Optional[Mapping[str, int]] = None,
    strict: Optional[bool] = None,
    steps: int = 1,
) -> DiagnosticBag:
    """Snapshot both programs and certify the transformation between them.

    ``strict`` defaults by pass name: passes in :data:`RELAXED_PASSES`
    get the relaxed check, everything else the full one.
    """
    if strict is None:
        strict = pass_name not in RELAXED_PASSES
    b = snapshot_program(before, params, steps)
    a = snapshot_program(after, params, steps)
    return check_legality(b, a, pass_name=pass_name, strict=strict)


class PassVerifier:
    """Stateful checker for a pipeline: snapshot once, verify each stage.

    Usage::

        verifier = PassVerifier(program, params={"N": 8})
        ...
        p = some_pass(p)
        verifier.check("some_pass", p)   # raises PassLegalityError on a
                                         # violation, then re-baselines

    Each successful check makes the new program the baseline, so a
    pipeline of n passes costs n+1 snapshots and failures blame the
    exact pass that broke the program.
    """

    def __init__(
        self,
        program: Program,
        params: Optional[Mapping[str, int]] = None,
        steps: int = 1,
        reuse_bounds: bool = False,
        doall: bool = False,
    ) -> None:
        self.params = params
        self.steps = steps
        self.reuse_bounds = reuse_bounds
        self.doall = doall
        self.baseline = snapshot_program(program, params, steps)
        self._baseline_program = program
        self.history: list[tuple[str, DiagnosticBag]] = []

    def check(
        self,
        pass_name: str,
        program: Program,
        strict: Optional[bool] = None,
    ) -> DiagnosticBag:
        """Certify ``program`` against the current baseline; re-baseline.

        Raises :class:`PassLegalityError` when the pass broke a
        dependence; the exception's ``bag`` carries the diagnostics.
        With ``reuse_bounds=True`` the static S310 check also compares
        symbolic reuse-distance bounds across the pass (warnings only —
        a locality regression is suspicious, not illegal).  With
        ``doall=True`` the R510 check compares parallelism profiles and
        warns when the pass serialized a parallel outermost axis.
        """
        if strict is None:
            strict = pass_name not in RELAXED_PASSES
        snap = snapshot_program(program, self.params, self.steps)
        bag = check_legality(
            self.baseline, snap, pass_name=pass_name, strict=strict
        )
        if self.reuse_bounds:
            from .reuse_check import reuse_bound_check

            bag.extend(
                reuse_bound_check(
                    self._baseline_program, program, pass_name, self.steps
                )
            )
        if self.doall:
            from .races import doall_preservation_check

            bag.extend(
                doall_preservation_check(
                    self._baseline_program, program, pass_name, self.params
                )
            )
        self.history.append((pass_name, bag))
        if bag.has_errors():
            raise PassLegalityError.from_bag(f"pass {pass_name!r}", bag)
        self.baseline = snap
        self._baseline_program = program
        return bag
