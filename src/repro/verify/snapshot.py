"""Instance-level access snapshots: the evidence behind legality checks.

A :class:`Snapshot` records, for a program at small *concrete* parameter
values, every write instance each memory cell receives, in execution
order, together with

* the constant-folded **signature** of the assigned expression — a
  skeleton in which every numeric leaf (constants, parameters, loop
  indices) is folded away and every memory read is named by the cell it
  touches and the *write epoch* it observes;
* the list of ``(cell, epoch)`` reads the instance performs;
* the source text and iteration vector of the statement instance, for
  diagnostics.

The ``epoch`` of a read is the number of writes the cell has received so
far (0-based index of the producing write; ``-1`` means the initial
value).  Two snapshots with identical per-cell write chains therefore
agree on every flow (read-after-write), anti (write-after-read), and
output (write-after-write) dependence — not as abstract direction
vectors but instance by instance — which is what the legality checker
in :mod:`repro.verify.legality` certifies.

Signatures are substitution-invariant on purpose: after unrolling, index
``i`` becomes a literal, but ``IndexVar`` leaves fold to their concrete
value either way, so the unrolled instance matches the original one.
No floating-point program semantics are involved — snapshots never
evaluate array contents, only subscripts and bounds (exact rational
arithmetic, same as the interpreter's `_eval_int`).

Cells are canonicalized across array splitting: a split array's
:class:`~repro.lang.SliceOrigin` chain maps its cells back to cells of
the original declaration, so ``split_arrays`` output is comparable with
its input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Optional, Sequence

from ..lang import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CallStmt,
    Const,
    Expr,
    Guard,
    IndexVar,
    Loop,
    Param,
    Program,
    ScalarRef,
    SliceOrigin,
    Stmt,
    UnaryOp,
    ValidationError,
)

#: identity of one memory location: (array name, 1-based index tuple);
#: scalars use ("$scalar:<name>", ()) so both live in one namespace
Cell = tuple[str, tuple[int, ...]]

SCALAR_CELL_PREFIX = "$scalar:"


def scalar_cell(name: str) -> Cell:
    return (SCALAR_CELL_PREFIX + name, ())


def is_scalar_cell(cell: Cell) -> bool:
    return cell[0].startswith(SCALAR_CELL_PREFIX)


def format_cell(cell: Cell) -> str:
    name, idx = cell
    if is_scalar_cell(cell):
        return name[len(SCALAR_CELL_PREFIX):]
    return f"{name}[{', '.join(str(i) for i in idx)}]"


@dataclass(frozen=True)
class WriteInstance:
    """One dynamic write to one cell."""

    stmt: str  #: source text of the assignment
    iters: tuple[tuple[str, int], ...]  #: loop-index bindings at the write
    sig: object  #: constant-folded expression skeleton (hashable)
    reads: tuple[tuple[Cell, int], ...]  #: (cell, epoch observed)

    def location(self) -> str:
        if not self.iters:
            return self.stmt
        at = ", ".join(f"{n}={v}" for n, v in self.iters)
        return f"{self.stmt}  @ {at}"


@dataclass
class Snapshot:
    """Per-cell write chains of one program at concrete parameters."""

    program_name: str
    params: dict[str, int]
    steps: int
    writes: dict[Cell, list[WriteInstance]] = field(default_factory=dict)

    def cells(self) -> set[Cell]:
        return set(self.writes)

    def array_cells(self) -> set[Cell]:
        return {c for c in self.writes if not is_scalar_cell(c)}

    def write_count(self) -> int:
        return sum(len(chain) for chain in self.writes.values())


def _slice_chain(origin: Optional[SliceOrigin]) -> tuple[str, list[SliceOrigin]]:
    """Root array name + steps ordered origin-first (leaf split first)."""
    chain: list[SliceOrigin] = []
    step = origin
    while step is not None:
        chain.append(step)
        step = step.parent
    return chain[-1].name, chain


class _Walker:
    """Mirrors the interpreter's control flow without touching data."""

    def __init__(self, program: Program, params: Mapping[str, int]) -> None:
        self.program = program
        self.env: dict[str, int] = {k: int(v) for k, v in params.items()}
        self.writes: dict[Cell, list[WriteInstance]] = {}
        self.iters: list[tuple[str, int]] = []
        # canonical cell mapping for split arrays: name -> (root, chain)
        self.canon: dict[str, tuple[str, list[SliceOrigin]]] = {}
        for decl in program.arrays:
            if decl.origin_slice is not None:
                self.canon[decl.name] = _slice_chain(decl.origin_slice)

    # -- cells ---------------------------------------------------------------

    def cell_of(self, ref: ArrayRef) -> Cell:
        idx = tuple(self.eval_int(sub) for sub in ref.indices)
        mapping = self.canon.get(ref.array)
        if mapping is None:
            return (ref.array, idx)
        root, chain = mapping
        out = list(idx)
        for step in chain:  # leaf split first: dims relative to parent shape
            out.insert(step.dim, step.index)
        return (root, tuple(out))

    def epoch_of(self, cell: Cell) -> int:
        return len(self.writes.get(cell, ())) - 1

    # -- evaluation -----------------------------------------------------------

    def eval_int(self, expr: Expr) -> int:
        value = expr.affine().evaluate(self.env)
        if isinstance(value, Fraction) and value.denominator != 1:
            raise ValidationError(f"non-integral subscript/bound {expr} = {value}")
        return int(value)

    def signature(
        self, expr: Expr, reads: list[tuple[Cell, int]]
    ) -> object:
        """Constant-folded skeleton; appends (cell, epoch) reads in order."""
        if isinstance(expr, Const):
            return ("c", Fraction(expr.value))
        if isinstance(expr, (Param, IndexVar)):
            return ("c", Fraction(self.env[expr.name]))
        if isinstance(expr, ScalarRef):
            cell = scalar_cell(expr.name)
            read = (cell, self.epoch_of(cell))
            reads.append(read)
            return ("r",) + read
        if isinstance(expr, ArrayRef):
            cell = self.cell_of(expr)
            read = (cell, self.epoch_of(cell))
            reads.append(read)
            return ("r",) + read
        if isinstance(expr, BinOp):
            lhs = self.signature(expr.left, reads)
            rhs = self.signature(expr.right, reads)
            if lhs[0] == "c" and rhs[0] == "c":
                try:
                    return ("c", _fold(expr.op, lhs[1], rhs[1]))
                except ZeroDivisionError:
                    pass
            return ("b", expr.op, lhs, rhs)
        if isinstance(expr, UnaryOp):
            operand = self.signature(expr.operand, reads)
            if operand[0] == "c":
                return ("c", -operand[1])
            return ("u", operand)
        if isinstance(expr, Call):
            return ("f", expr.func) + tuple(
                self.signature(a, reads) for a in expr.args
            )
        raise ValidationError(f"cannot snapshot expression {expr!r}")

    # -- statements -----------------------------------------------------------

    def walk_body(self, body: Sequence[Stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            reads: list[tuple[Cell, int]] = []
            sig = self.signature(stmt.expr, reads)
            if isinstance(stmt.target, ArrayRef):
                cell = self.cell_of(stmt.target)
            else:
                cell = scalar_cell(stmt.target.name)
            inst = WriteInstance(
                stmt=str(stmt),
                iters=tuple(self.iters),
                sig=sig,
                reads=tuple(reads),
            )
            self.writes.setdefault(cell, []).append(inst)
        elif isinstance(stmt, Loop):
            lo = self.eval_int(stmt.lower)
            hi = self.eval_int(stmt.upper)
            for i in range(lo, hi + 1):
                self.env[stmt.index] = i
                self.iters.append((stmt.index, i))
                self.walk_body(stmt.body)
                self.iters.pop()
            self.env.pop(stmt.index, None)
        elif isinstance(stmt, Guard):
            value = self.env.get(stmt.index)
            if value is None:
                raise ValidationError(f"guard index {stmt.index!r} unbound")
            if any(
                iv.lower.evaluate(self.env) <= value <= iv.upper.evaluate(self.env)
                for iv in stmt.intervals
            ):
                self.walk_body(stmt.body)
            else:
                self.walk_body(stmt.else_body)
        elif isinstance(stmt, CallStmt):
            proc = self.program.procedure(stmt.proc)
            saved: dict[str, Optional[int]] = {}
            for formal, arg in zip(proc.formals, stmt.args):
                saved[formal] = self.env.get(formal)
                self.env[formal] = self.eval_int(arg)
            self.walk_body(proc.body)
            for formal, old in saved.items():
                if old is None:
                    self.env.pop(formal, None)
                else:
                    self.env[formal] = old
        else:
            raise ValidationError(f"cannot snapshot {type(stmt).__name__}")


def _fold(op: str, lhs: Fraction, rhs: Fraction) -> Fraction:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        return lhs / rhs
    raise ValidationError(f"unknown operator {op!r}")


#: parameter value used when the caller does not pin one; big enough that
#: alignment shifts and peel loops have interior iterations to act on,
#: small enough that snapshots of 3-D programs stay cheap
DEFAULT_VERIFY_PARAM = 8


def snapshot_program(
    program: Program,
    params: Optional[Mapping[str, int]] = None,
    steps: int = 1,
) -> Snapshot:
    """Record the per-cell write chains of ``program``.

    ``params`` defaults to :data:`DEFAULT_VERIFY_PARAM` for every program
    parameter.  ``steps`` repeats the body like the interpreter's
    time-step loop, exposing cross-step dependences.
    """
    if params is None:
        params = {name: DEFAULT_VERIFY_PARAM for name in program.params}
    walker = _Walker(program, params)
    for _ in range(steps):
        walker.walk_body(program.body)
    return Snapshot(
        program_name=program.name,
        params={k: int(v) for k, v in params.items()},
        steps=steps,
        writes=walker.writes,
    )
