"""Static legality verification and lint for the compiler.

Two complementary tools over the same diagnostic framework:

* :func:`lint_program` — symbolic IR verification of a single program
  (structure, loop-bound sanity, subscript bounds, def-use hygiene);
* :func:`verify_pass` / :class:`PassVerifier` — instance-level
  certification that a transformation preserved every flow, anti, and
  output dependence, built on :func:`snapshot_program` access snapshots.

The CLI exposes both as ``repro lint`` and ``repro verify-pass``; the
pipeline's ``verify=True`` mode runs :class:`PassVerifier` after every
pass and raises :class:`PassLegalityError` on the first violation.
"""

from .codes import (
    CodeInfo,
    all_codes,
    explain_code,
    format_code_table,
    get_code,
)
from .diagnostics import (
    Diagnostic,
    DiagnosticBag,
    PassLegalityError,
    Severity,
    VerificationError,
)
from .ir_verifier import affine_range, lint_program
from .legality import (
    MAX_DIAGS_PER_CODE,
    RELAXED_PASSES,
    PassVerifier,
    check_legality,
    verify_pass,
)
from .races import (
    doall_preservation_check,
    lint_coherence,
    lint_parallelism,
    lint_races,
)
from .reuse_check import array_distance_bounds, reuse_bound_check
from .snapshot import (
    DEFAULT_VERIFY_PARAM,
    Cell,
    Snapshot,
    WriteInstance,
    format_cell,
    is_scalar_cell,
    scalar_cell,
    snapshot_program,
)

__all__ = [
    "Cell",
    "CodeInfo",
    "DEFAULT_VERIFY_PARAM",
    "Diagnostic",
    "DiagnosticBag",
    "MAX_DIAGS_PER_CODE",
    "PassLegalityError",
    "PassVerifier",
    "RELAXED_PASSES",
    "Severity",
    "Snapshot",
    "VerificationError",
    "WriteInstance",
    "affine_range",
    "all_codes",
    "array_distance_bounds",
    "check_legality",
    "doall_preservation_check",
    "explain_code",
    "format_cell",
    "format_code_table",
    "get_code",
    "is_scalar_cell",
    "lint_coherence",
    "lint_parallelism",
    "lint_program",
    "lint_races",
    "reuse_bound_check",
    "scalar_cell",
    "snapshot_program",
    "verify_pass",
]
