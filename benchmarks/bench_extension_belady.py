"""Extension — replacement policy vs reordering (paper §2.2 framing).

Reuse-driven execution is "the inverse of Belady's policy".  This
extension quantifies the distinction on ADI: Belady-optimal replacement
bounds what ANY cache policy can do for the original order, while
computation reordering (fusion) changes the order itself — the paper's
argument that bandwidth problems need restructuring, not better caches:
fused + plain LRU beats the unfused program even under an oracle cache.
"""

from repro.baselines import simulate_belady
from repro.core import compile_variant
from repro.harness import format_table, machine_for
from repro.interp import trace_program
from repro.lang import validate
from repro.memsim import simulate_cache
from repro.programs import registry


def run():
    entry = registry.get("adi")
    program = validate(entry.build())
    params = dict(entry.small_params)
    machine = machine_for(entry.machine_spec)

    base = compile_variant(program, "noopt")
    fused = compile_variant(program, "new")
    rows = []
    results = {}
    for label, variant in (("original", base), ("fusion+regroup", fused)):
        trace = trace_program(variant.program, params, steps=entry.steps)
        addrs = variant.layout(params).addresses(trace)
        lru = int(simulate_cache(machine.l2, addrs).sum())
        # capacity-equivalent fully-associative OPT bound
        opt = int(simulate_belady(machine.l2, addrs).sum())
        rows.append([label, len(trace), lru, opt])
        results[label] = (lru, opt)
    table = format_table(
        ("program version", "accesses", "L2 misses (2-way LRU)", "L2 misses (OPT bound)"),
        rows,
        title="Extension - oracle replacement vs computation reordering (ADI L2)",
    )
    lru_orig, opt_orig = results["original"]
    lru_new, _ = results["fusion+regroup"]
    assert lru_new < opt_orig, (
        "restructured code under plain LRU must beat the original under an "
        "oracle replacement policy — bandwidth needs reordering, not caching"
    )
    return table


def test_extension_belady(benchmark, record_artifact):
    text = benchmark.pedantic(run, rounds=1, iterations=1)
    record_artifact("extension_belady", text)
