"""E4 — Figure 9: the applications table.

Prints the paper's reported structure next to what our DSL
re-implementations actually contain — the fidelity check for the
"structurally faithful substitution" documented in DESIGN.md.
"""

from repro.harness import format_table
from repro.lang import validate
from repro.programs import APPLICATIONS


def render() -> str:
    rows = []
    for name, entry in APPLICATIONS.items():
        p = validate(entry.build())
        stats = p.stats()
        facts = entry.paper_facts
        lo, hi = stats["nest_levels"]
        rows.append(
            [
                name,
                facts["source"],
                facts["input_size"],
                f"{facts['loop_nests']} ({facts['nest_levels'][0]}-{facts['nest_levels'][1]})",
                f"{stats['loop_nests']} ({lo}-{hi})",
                facts["arrays"],
                stats["arrays"],
            ]
        )
        assert stats["arrays"] == facts["arrays"], f"{name}: array count drifted"
    return format_table(
        (
            "name",
            "source",
            "paper input",
            "paper nests (levels)",
            "ours nests (levels)",
            "paper arrays",
            "ours arrays",
        ),
        rows,
        title="Figure 9 - applications tested (paper vs this reproduction)",
    )


def test_fig9_applications(benchmark, record_artifact):
    text = benchmark(render)
    record_artifact("fig9_applications", text)
