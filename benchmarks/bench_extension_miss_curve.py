"""Extension — cache-size spectrum from one reuse-distance profile.

Reuse distance is machine-independent: one profile predicts the miss
ratio of every fully-associative LRU cache size (the methodology behind
the paper's Fig. 3 analysis).  This bench prints the predicted miss-ratio
curve for ADI before and after the global strategy — the optimized
program reaches its floor with a fraction of the cache.
"""

from repro.core import compile_variant
from repro.harness import format_table
from repro.interp import trace_program
from repro.lang import validate
from repro.locality import miss_ratio_curve, reuse_distances
from repro.programs import registry

CAPACITIES = [2**k for k in range(6, 17)]  # 64 .. 65536 elements


def run():
    entry = registry.get("adi")
    program = validate(entry.build())
    params = dict(entry.small_params)
    curves = {}
    for level in ("noopt", "new"):
        variant = compile_variant(program, level)
        trace = trace_program(variant.program, params, steps=entry.steps)
        # element-granularity distances under the variant's layout
        addrs = variant.layout(params).addresses(trace, in_bytes=False)
        curves[level] = miss_ratio_curve(reuse_distances(addrs), CAPACITIES)
    rows = [
        [c, f"{curves['noopt'][c]:.4f}", f"{curves['new'][c]:.4f}"]
        for c in CAPACITIES
    ]
    table = format_table(
        ("capacity (elements)", "original miss ratio", "optimized miss ratio"),
        rows,
        title="Extension - predicted fully-associative LRU miss-ratio curves (ADI)",
    )
    # the optimized program must reach near-floor miss ratio at a much
    # smaller capacity: compare the mid-range capacities
    mid = CAPACITIES[len(CAPACITIES) // 2]
    assert curves["new"][mid] < curves["noopt"][mid], (
        "optimization must shift the miss-ratio knee to smaller caches"
    )
    return table


def test_extension_miss_curve(benchmark, record_artifact):
    text = benchmark.pedantic(run, rounds=1, iterations=1)
    record_artifact("extension_miss_curve", text)
