"""E1 — Figure 1: reuse distances of the example sequence, before and
after computation fusion.

The paper's 7-access sequence ``a b c a a c b`` has reuse distances
(2, 0, 1, 2); after fusing computations on the same data every reuse
distance drops to zero.
"""

from repro.locality import COLD, reuse_distances


def render() -> str:
    names = "abc"
    original = [0, 1, 2, 0, 0, 2, 1]
    fused = [0, 0, 1, 1, 2, 2]
    lines = ["Figure 1 - example reuse distances"]
    for label, seq in (("(a) original", original), ("(b) fused", fused)):
        d = reuse_distances(seq)
        pretty = " ".join(names[k] for k in seq)
        dists = " ".join("-" if x == COLD else str(x) for x in d)
        lines.append(f"{label}: sequence  {pretty}")
        lines.append(f"{' ' * len(label)}  distances {dists}")
    d = reuse_distances(fused)
    assert all(x in (COLD, 0) for x in d), "fused sequence must be all-zero"
    return "\n".join(lines)


def test_fig1_example(benchmark, record_artifact):
    text = benchmark(render)
    record_artifact("fig1_example", text)
