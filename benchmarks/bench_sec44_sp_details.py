"""E6 — §4.4: structural detail of the SP transformation.

Paper numbers (their full SP): 15 arrays -> 42 after splitting -> 17
after regrouping; distribution/unrolling produced 482 loops at three
levels (157/161/164); one-level fusion merged 157 -> 8.

Our mini-SP is smaller but must show the same pipeline arc: component
dims split away, distribution scatters, level-1 fusion collapses the top
level to a handful of units, regrouping merges the split arrays back into
far fewer allocation units (and differently from the declaration).
"""

from repro.core import compile_variant, preliminary
from repro.core.fusion import fuse_program
from repro.harness import format_table
from repro.lang import validate
from repro.programs import APPLICATIONS


def render() -> str:
    entry = APPLICATIONS["sp"]
    program = validate(entry.build())
    pre = preliminary(program)
    fused1, rep1 = fuse_program(pre, max_levels=1)
    fused3, rep3 = fuse_program(pre, max_levels=8)
    variant = compile_variant(program, "new")

    rows = [
        ["arrays (declared)", 15, program.array_count()],
        ["arrays after splitting", 42, pre.array_count()],
        ["arrays after regrouping", 17, variant.regroup.merged_array_count()],
        ["top-level loops after distribution", 157, rep1.levels[0].loops_before],
        ["fused units, 1-level fusion", 8, rep1.levels[0].units_after],
        [
            "fused units at level 2, full fusion",
            13,
            rep3.levels[1].units_after if len(rep3.levels) > 1 else 0,
        ],
        [
            "fused units at level 3, full fusion",
            17,
            rep3.levels[2].units_after if len(rep3.levels) > 2 else 0,
        ],
    ]
    # pipeline-arc assertions
    assert pre.array_count() > program.array_count()
    assert variant.regroup.merged_array_count() < pre.array_count()
    assert rep1.levels[0].units_after < rep1.levels[0].loops_before / 4
    table = format_table(
        ("quantity", "paper (full SP)", "this reproduction (mini-SP)"),
        rows,
        title="Sec 4.4 - SP structural pipeline",
    )
    groups = variant.regroup.describe()
    return table + "\n\nregrouping decision (cf. the paper's 'very different " \
        "from the specification given by the programmer'):\n" + groups


def test_sec44_sp_details(benchmark, record_artifact):
    text = benchmark.pedantic(render, rounds=1, iterations=1)
    record_artifact("sec44_sp_details", text)
