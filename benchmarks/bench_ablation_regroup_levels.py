"""A2 — ablation: multi-level vs element-only regrouping (paper §3.1).

The paper's extension beyond their earlier workshop paper is grouping at
levels *above* the array element ("placing simultaneously used array
segments reduces cache interference and the page-table working set").
We compare three regrouping configurations on the fused programs:

* element-only (max_level=0): the earlier work's capability;
* outer-only (min_level=1): the paper's SGI workaround configuration;
* full multi-level (default).
"""

from repro.core.regroup import RegroupOptions
from repro.harness import RunRequest, format_table
from repro.harness import run as run_experiment

CONFIGS = {
    "element-only": RegroupOptions(max_level=0),
    "outer-only": RegroupOptions(min_level=1),
    "multi-level": RegroupOptions(),
}


def run():
    rows = []
    collected = {}
    for app in ("tomcatv", "sp"):
        base = run_experiment(RunRequest(program=app, levels=("noopt",)))[0]
        row = [app]
        for label, options in CONFIGS.items():
            res = run_experiment(
                RunRequest(program=app, levels=("new",), regroup_options=options)
            )[0]
            norm = res.stats.normalized_to(base.stats)
            collected[(app, label)] = norm
            row.append(f"{norm['time']:.3f}")
            row.append(f"{norm['tlb']:.2f}")
        rows.append(row)
    headers = ["program"]
    for label in CONFIGS:
        headers += [f"{label} time", f"{label} TLB"]
    table = format_table(
        tuple(headers),
        rows,
        title="Ablation A2 - regrouping level cap (normalized to original)",
    )
    # multi-level regrouping must control the TLB at least as well as
    # element-only grouping (the point of §3.1)
    for app in ("tomcatv", "sp"):
        assert (
            collected[(app, "multi-level")]["tlb"]
            <= collected[(app, "element-only")]["tlb"] * 1.05
        ), app
    return table


def test_ablation_regroup_levels(benchmark, record_artifact):
    text = benchmark.pedantic(run, rounds=1, iterations=1)
    record_artifact("ablation_regroup_levels", text)
