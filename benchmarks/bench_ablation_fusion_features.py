"""A1 — ablation: which fusion features earn the fusion (paper §4.3).

The paper's summary: "All test programs have loops with a different
number of dimensions.  Mere loop alignment cannot fuse any of the tested
programs except for a few loops in SP.  Swim also requires loop
splitting."  We toggle statement embedding, alignment, and boundary
splitting and count the fused units each configuration achieves.
"""

import pytest

from repro.core import preliminary
from repro.core.fusion import FusionOptions, fuse_program
from repro.harness import format_table
from repro.lang import validate
from repro.programs import APPLICATIONS

CONFIGS = {
    "full": FusionOptions(),
    "no-embedding": FusionOptions(embedding=False),
    "no-alignment": FusionOptions(alignment=False),
    "no-splitting": FusionOptions(splitting=False),
    "identical-bounds only": FusionOptions(
        embedding=False, alignment=False, splitting=False, identical_bounds=True
    ),
}


def run():
    rows = []
    fused_units = {}
    for app in ("swim", "tomcatv", "adi"):
        program = validate(APPLICATIONS[app].build())
        pre = preliminary(program)
        row = [app, pre.loop_nest_count()]
        for label, options in CONFIGS.items():
            fused, report = fuse_program(pre, options=options)
            units = report.levels[0].units_after
            fused_units[(app, label)] = units
            row.append(units)
        rows.append(row)
    table = format_table(
        ("program", "nests in") + tuple(CONFIGS),
        rows,
        title="Ablation A1 - level-1 fused units by enabled fusion features",
    )
    for app in ("swim", "tomcatv", "adi"):
        assert fused_units[(app, "full")] <= fused_units[(app, "identical-bounds only")], (
            f"{app}: the full algorithm must fuse at least as much as the "
            "restricted baseline"
        )
    # the paper's point: the restricted (McKinley-style) algorithm leaves
    # most of the program unfused on at least some applications
    assert any(
        fused_units[(app, "identical-bounds only")]
        > fused_units[(app, "full")]
        for app in ("swim", "tomcatv", "adi")
    )
    return table


def test_ablation_fusion_features(benchmark, record_artifact):
    text = benchmark.pedantic(run, rounds=1, iterations=1)
    record_artifact("ablation_fusion_features", text)
