"""E2 — Figure 3: reuse-distance histograms of program order vs
reuse-driven execution, for ADI and SP at two input sizes each (plus the
reuse-based-fusion curve for SP, the paper's lower-right panel).

The paper's y-axis is thousands of references per log2 distance bin; the
qualitative content is (1) program order has hills that move right as the
input grows (evadable reuses), (2) reuse-driven execution collapses most
of those hills, (3) source-level fusion realizes a large part of that.
"""

import pytest

from repro.core import compile_variant
from repro.harness import stage_timer
from repro.interp import trace_program
from repro.lang import validate
from repro.locality import ReuseHistogram, reuse_distances
from repro.programs import APPLICATIONS
from repro.reusedriven import reuse_driven_order

from conftest import paper_sized

#: (application, parameter values) — scaled stand-ins for the paper's
#: ADI 50x50 / 100x100 and SP 14^3 / 28^3 (see EXPERIMENTS.md)
CASES = {
    "adi": [50, 100] if not paper_sized() else [50, 100],
    "sp": [8, 12] if not paper_sized() else [14, 28],
}


def curves(
    app: str, n: int, with_fused: bool, timings: dict
) -> dict[str, ReuseHistogram]:
    entry = APPLICATIONS[app]
    program = validate(entry.build())
    out = {}
    with stage_timer(timings, "trace-gen"):
        trace = trace_program(program, {"N": n}, with_instr=True)
    with stage_timer(timings, "distance"):
        out["program order"] = ReuseHistogram.from_distances(
            reuse_distances(trace.global_keys())
        )
    reordered = reuse_driven_order(trace)
    with stage_timer(timings, "distance"):
        out["reuse driven"] = ReuseHistogram.from_distances(
            reuse_distances(reordered.trace.global_keys())
        )
    if with_fused:
        fused = compile_variant(program, "fusion")
        with stage_timer(timings, "trace-gen"):
            ftrace = trace_program(fused.program, {"N": n})
        with stage_timer(timings, "distance"):
            out["reuse-based fusion"] = ReuseHistogram.from_distances(
                reuse_distances(ftrace.global_keys())
            )
    return out


def render(app: str, sizes) -> str:
    lines = [f"Figure 3 - {app}: reuse distance histograms (log2 bins)"]
    timings: dict = {}
    for n in sizes:
        with_fused = app == "sp" and n == sizes[-1]
        data = curves(app, n, with_fused, timings)
        lines.append(f"\n-- input {n} --")
        for label, hist in data.items():
            lines.append(hist.format_ascii(width=40, label=f"[{label}]"))
            lines.append(
                f"  mean log2 distance: {hist.mean_log_distance():.2f}, "
                f"frac >= 2^8: {hist.fraction_ge(256):.3f}"
            )
        po = data["program order"]
        rd = data["reuse driven"]
        if app == "adi":
            assert rd.mean_log_distance() <= po.mean_log_distance(), (
                "reuse-driven execution must shorten ADI's reuses"
            )
        else:
            # mini-SP: Fig. 2's producer chasing pulls whole 3-D stencil
            # wavefronts forward and loses to phase-major program order at
            # simulator scale — recorded as deviation D1 in EXPERIMENTS.md
            delta = rd.mean_log_distance() - po.mean_log_distance()
            lines.append(
                f"\n  [deviation D1] mean log2 distance change under "
                f"reuse-driven execution: {delta:+.2f}"
            )
    lines.append(
        "\nstage seconds: "
        + ", ".join(f"{k} {v:.2f}" for k, v in sorted(timings.items()))
    )
    return "\n".join(lines)


@pytest.mark.parametrize("app", sorted(CASES))
def test_fig3(app, benchmark, record_artifact):
    text = benchmark.pedantic(render, args=(app, CASES[app]), rounds=1, iterations=1)
    record_artifact(f"fig3_{app}", text)
