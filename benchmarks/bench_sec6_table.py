"""E7 — §6 table: data transferred under NoOpt / SGI / New.

The paper's closing table compares miss counts for unoptimized code, the
SGI compiler's local strategy, and the global strategy, concluding that
the new strategy beats the SGI compiler by average factors of ~9x (L1),
3.4x (L2) and 1.8x (TLB).  We reproduce the table with our SGI-like
baseline (intra-nest fusion + inter-array padding) and report the same
average improvement factors.
"""

from repro.harness import (
    RunRequest,
    default_cache_dir,
    format_table,
    geometric_mean,
)
from repro.harness import run as run_experiment

APPS = ("swim", "tomcatv", "adi", "sp")


def run():
    rows = []
    factors = {"l1": [], "l2": [], "tlb": []}
    for app in APPS:
        res = {
            r.level: r
            for r in run_experiment(
                RunRequest(
                    program=app,
                    levels=("noopt", "sgi", "new"),
                    cache=default_cache_dir(),
                    jobs=None,  # one worker per CPU
                )
            )
        }
        noopt, sgi, new = res["noopt"].stats, res["sgi"].stats, res["new"].stats
        rows.append(
            [
                app,
                noopt.l1_misses,
                sgi.l1_misses,
                new.l1_misses,
                noopt.l2_misses,
                sgi.l2_misses,
                new.l2_misses,
                noopt.tlb_misses,
                sgi.tlb_misses,
                new.tlb_misses,
            ]
        )
        for metric in factors:
            s = getattr(sgi, f"{metric}_misses")
            n = getattr(new, f"{metric}_misses")
            if n > 0:
                factors[metric].append(s / n)
    means = {m: geometric_mean(v) for m, v in factors.items()}
    table = format_table(
        (
            "program",
            "L1 NoOpt",
            "L1 SGI",
            "L1 New",
            "L2 NoOpt",
            "L2 SGI",
            "L2 New",
            "TLB NoOpt",
            "TLB SGI",
            "TLB New",
        ),
        rows,
        title="Sec 6 table - misses under NoOpt / SGI-like / New",
    )
    summary = (
        f"\naverage improvement of New over SGI-like (geomean): "
        f"L1 {means['l1']:.2f}x, L2 {means['l2']:.2f}x, TLB {means['tlb']:.2f}x"
        f"\npaper (their SGI compiler): L1 9x, L2 3.4x, TLB 1.8x"
    )
    # the global strategy must beat the local one on memory traffic
    assert means["l2"] > 1.0, "New must transfer less data than the SGI baseline"
    return table + summary


def test_sec6_table(benchmark, record_artifact):
    text = benchmark.pedantic(run, rounds=1, iterations=1)
    record_artifact("sec6_table", text)
