"""Extension — miss-rate scaling with input size (the evadable story
measured at the cache instead of in reuse distances).

At a fixed cache, the original ADI's per-access L2 miss rate climbs as the
mesh outgrows the hierarchy (its reuses are evadable); the fused+regrouped
program's rate stays near its streaming floor because its reuse distances
no longer grow with N.
"""

from repro.harness import format_table
from repro.harness.sweep import growth_factor, scaling_sweep

SIZES = [33, 65, 129, 193]


def run():
    points = scaling_sweep("adi", ["noopt", "new"], SIZES)
    rows = []
    for n in SIZES:
        row = [n]
        for level in ("noopt", "new"):
            p = next(x for x in points if x.n == n and x.level == level)
            row += [f"{p.l2_rate:.4f}", f"{p.bytes_per_access:.2f}"]
        rows.append(row)
    table = format_table(
        (
            "N",
            "original L2 rate",
            "original B/access",
            "optimized L2 rate",
            "optimized B/access",
        ),
        rows,
        title="Extension - ADI miss-rate scaling at fixed cache (24 KB L2)",
    )
    g_orig = growth_factor(points, "noopt")
    g_new = growth_factor(points, "new")
    table += (
        f"\nL2 miss-rate growth (largest/smallest N): "
        f"original {g_orig:.2f}x, optimized {g_new:.2f}x"
    )
    assert g_new < g_orig, (
        "the optimized program's miss rate must scale more slowly — its "
        "reuses are no longer evadable"
    )
    return table


def test_extension_scaling(benchmark, record_artifact):
    text = benchmark.pedantic(run, rounds=1, iterations=1)
    record_artifact("extension_scaling", text)
