"""E3 — §2.2: effect of reuse-driven execution on long/evadable reuses.

Paper targets: ADI −33%, NAS/SP −63%, DOE/Sweep3D −67%, FFT +6% (worse).

Long reuses are counted with a size-proportional threshold (the paper's
evadable hills are the ones that move right with input size; a threshold
that scales with the data set captures exactly the mass under them).

Measured deviations are expected and recorded: our mini-SP's 3-D flux
stencil makes Fig. 2's ForceExecute pull in whole wavefronts of producer
cells, which at simulator scale costs more locality than the phase-major
program order — see EXPERIMENTS.md.
"""

import pytest

from repro.interp import trace_program
from repro.lang import validate
from repro.locality import ReuseHistogram, reuse_distances
from repro.programs import APPLICATIONS, STUDY_PROGRAMS, build_fft
from repro.reusedriven import reuse_driven_order

PAPER_TARGETS = {
    "adi": "-33%",
    "sp": "-63%",
    "sweep3d": "-67%",
    "fft": "+6%",
}


def long_reuse_fraction(trace, threshold):
    h = ReuseHistogram.from_distances(reuse_distances(trace.global_keys()))
    return h.fraction_ge(threshold), h


def study(name):
    if name == "fft":
        program = validate(build_fft(256))
        trace = trace_program(program, {}, with_instr=True)
        threshold = 4 * 256 // 2
    else:
        entry = STUDY_PROGRAMS.get(name) or APPLICATIONS[name]
        program = validate(entry.build())
        params = dict(entry.small_params)
        trace = trace_program(program, params, with_instr=True)
        # data size in elements, / 16: under the moving hills
        from repro.core.regroup import default_layout

        threshold = default_layout(program, params).total_elems // 16
    before, hb = long_reuse_fraction(trace, threshold)
    reordered = reuse_driven_order(trace)
    after, ha = long_reuse_fraction(reordered.trace, threshold)
    change = (after - before) / before if before else 0.0
    return {
        "program": name,
        "threshold": threshold,
        "before": before,
        "after": after,
        "change": change,
        "paper": PAPER_TARGETS[name],
    }


def render():
    from repro.harness import format_table

    rows = []
    for name in ("adi", "sp", "sweep3d", "fft"):
        r = study(name)
        rows.append(
            [
                r["program"],
                r["threshold"],
                f"{r['before']:.3f}",
                f"{r['after']:.3f}",
                f"{r['change']:+.0%}",
                r["paper"],
            ]
        )
    table = format_table(
        ("program", "threshold", "long-reuse frac before", "after", "change", "paper"),
        rows,
        title="Sec 2.2 - reuse-driven execution vs long reuses",
    )
    # qualitative anchors that must hold
    by_name = {r[0]: r for r in rows}
    assert float(by_name["sweep3d"][3]) < float(by_name["sweep3d"][2]), (
        "sweep3d must improve under reuse-driven execution"
    )
    assert float(by_name["adi"][3]) <= float(by_name["adi"][2]) * 1.05, (
        "adi must not get substantially worse"
    )
    return table


def test_sec22_evadable(benchmark, record_artifact):
    text = benchmark.pedantic(render, rounds=1, iterations=1)
    record_artifact("sec22_evadable", text)
