"""E5/E8 — Figure 10: effect of the transformations on execution time and
L1 / L2 / TLB misses, normalized to the original program.

Paper shapes this must reproduce (§4.3):

* the combined strategy (fusion + regrouping) always wins;
* fusion *alone* can lose (Swim on Origin2000 −6%, Tomcatv −1–2%,
  3-level SP 1.16× slower with 8.8× TLB misses) and regrouping recovers;
* ADI (largest input : cache ratio) gains the most — paper 2.33×;
* SP shows the four-bar story: original / 1-level fusion / 3-level
  fusion / 3-level fusion + regrouping.

Absolute counts differ (scaled simulator, see EXPERIMENTS.md); the
directions and rough factors are asserted below.
"""

import pytest

from repro.harness import (
    NORMALIZED_HEADERS,
    TIMING_HEADERS,
    RunRequest,
    default_cache_dir,
    format_table,
    normalized_rows,
    timing_rows,
)
from repro.harness import run as run_experiment

LEVELS = {
    "swim": ["noopt", "fusion", "new"],
    "tomcatv": ["noopt", "fusion", "new"],
    "adi": ["noopt", "fusion", "new"],
    "sp": ["noopt", "fusion1", "fusion", "new"],
}

PAPER_NOTES = {
    "swim": "paper: fusion ~ -10% time (Octane), grouping ~2% more",
    "tomcatv": "paper: fusion -1..2%, combined -16% time / -20% L2",
    "adi": "paper: -39% L1, -44% L2, -56% TLB, 2.33x speedup",
    "sp": "paper: 1-level -27% time; 3-level 1.16x slower w/ 8.8x TLB; +grouping 1.5x speedup",
}


def run(app):
    # parallel workers + on-disk trace cache (warm repeats replay)
    results = run_experiment(
        RunRequest(
            program=app,
            levels=LEVELS[app],
            cache=default_cache_dir(),
            jobs=None,  # one worker per CPU
        )
    ).records()
    table = format_table(
        NORMALIZED_HEADERS,
        normalized_rows(results),
        title=f"Figure 10 - {app} "
        f"(machine {results[0].stats.machine}, {results[0].trace_length:,} accesses)",
    )
    timing = format_table(
        TIMING_HEADERS,
        timing_rows(results),
        title="per-stage seconds ('-' = served from cache)",
    )
    return results, table + f"\n  {PAPER_NOTES[app]}\n\n" + timing


def norm(results, level, metric="time"):
    base = next(r for r in results if r.level == "noopt")
    target = next(r for r in results if r.level == level)
    return target.stats.normalized_to(base.stats)[metric]


@pytest.mark.parametrize("app", sorted(LEVELS))
def test_fig10(app, benchmark, record_artifact):
    results, table = benchmark.pedantic(run, args=(app,), rounds=1, iterations=1)
    record_artifact(f"fig10_{app}", table)

    # shape assertions per application
    combined = norm(results, "new")
    assert combined < 1.0, f"{app}: combined strategy must beat the original"
    assert norm(results, "new", "l2") < 1.0, f"{app}: combined must cut L2 misses"
    if app == "adi":
        assert combined < 0.6, "ADI gains the most (paper 2.33x)"
    if app == "sp":
        # the TLB explosion of deep fusion without grouping, and its recovery
        fusion_tlb = norm(results, "fusion", "tlb")
        new_tlb = norm(results, "new", "tlb")
        assert fusion_tlb > 4.0, "3-level fusion alone must blow up the TLB"
        assert new_tlb < fusion_tlb / 2, "grouping must recover most of it"
        assert norm(results, "fusion") > 1.0, "3-level fusion alone slows SP"
    if app in ("swim", "tomcatv"):
        # combined at least as good as fusion alone
        assert combined <= norm(results, "fusion") * 1.02
