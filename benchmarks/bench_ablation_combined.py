"""A3 — ablation: the combined-strategy claim (paper §4.3 Summary).

"Although both together are always beneficial, neither of them is so
without the other.  Fusion may degrade performance without grouping and
grouping may see little opportunity without fusion."

We measure execution time (normalized to the original) for fusion-only,
regrouping-only, and the combined strategy across all four applications.
"""

from repro.harness import RunRequest, default_cache_dir, format_table
from repro.harness import run as run_experiment


def run():
    rows = []
    results_by_app = {}
    levels = ["noopt", "fusion", "regroup", "new", "fusion1+regroup"]
    for app in ("swim", "tomcatv", "adi", "sp"):
        res = {
            r.level: r
            for r in run_experiment(
                RunRequest(
                    program=app,
                    levels=levels,
                    cache=default_cache_dir(),
                    jobs=None,  # one worker per CPU
                )
            )
        }
        base = res["noopt"].stats
        norm = {
            level: res[level].stats.normalized_to(base)["time"]
            for level in levels[1:]
        }
        results_by_app[app] = norm
        rows.append(
            [
                app,
                f"{norm['fusion']:.3f}",
                f"{norm['regroup']:.3f}",
                f"{norm['new']:.3f}",
                f"{norm['fusion1+regroup']:.3f}",
            ]
        )
    table = format_table(
        (
            "program",
            "fusion only",
            "regroup only",
            "combined (new)",
            "1-level fusion + regroup",
        ),
        rows,
        title="Ablation A3 - normalized time: each transformation alone vs combined",
    )
    for app, norm in results_by_app.items():
        best_combined = min(norm["new"], norm["fusion1+regroup"])
        assert best_combined <= norm["fusion"] * 1.05, (
            f"{app}: combining must not lose to fusion alone"
        )
        assert best_combined < 1.0, f"{app}: the combined strategy must win"
    # fusion alone degrades somewhere (the paper's Swim/Tomcatv/SP story)
    assert any(norm["fusion"] > 1.0 for norm in results_by_app.values())
    return (
        table
        + "\npaper: 'although both together are always beneficial, neither "
        "of them is so without the other' — at simulator scale, mini-SP "
        "prefers 1-level fusion + regrouping (see EXPERIMENTS.md)"
    )


def test_ablation_combined(benchmark, record_artifact):
    text = benchmark.pedantic(run, rounds=1, iterations=1)
    record_artifact("ablation_combined", text)
