"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper and
persists the text artifact under ``benchmarks/results/`` so the run
leaves an inspectable record (EXPERIMENTS.md points at these files).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_artifact(results_dir):
    """Write (and echo) the regenerated table/figure text."""

    def write(name: str, text: str) -> str:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return text

    return write


def paper_sized() -> bool:
    """Opt into the paper's full input sizes (hours of simulation)."""
    return os.environ.get("REPRO_PAPER_SIZES", "") == "1"
