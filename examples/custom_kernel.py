#!/usr/bin/env python
"""Bring your own kernel: optimize a user-written Jacobi solver.

Demonstrates using the library on new code rather than the bundled
benchmarks: a Jacobi smoother with a residual computation and an error
reduction, written with the *builder API* instead of DSL text.  The
pipeline fuses the sweeps, regroups the mesh arrays, and the example
verifies semantics and reports the simulated memory behaviour.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.core import compile_variant
from repro.harness import machine_for
from repro.interp import run_program, trace_program
from repro.lang import (
    ProgramBuilder,
    assign,
    call,
    idx,
    loop,
    param,
    to_source,
    validate,
)
from repro.memsim import simulate_hierarchy
from repro.programs.registry import MachineSpec


def build_jacobi():
    b = ProgramBuilder("jacobi", params=["N"])
    U = b.array("U", param("N"), param("N"))
    V = b.array("V", param("N"), param("N"))
    R = b.array("R", param("N"), param("N"))
    F = b.array("F", param("N"), param("N"))
    i, j = idx("i"), idx("j")

    # sweep: V = relax(U, F)
    b.add(
        loop(
            "i", 2, param("N") - 1,
            loop(
                "j", 2, param("N") - 1,
                assign(
                    V[j, i],
                    call("relax", U[j - 1, i], U[j + 1, i], U[j, i - 1],
                         U[j, i + 1], F[j, i]),
                ),
            ),
        )
    )
    # residual: R = resid(V, U)
    b.add(
        loop(
            "i", 2, param("N") - 1,
            loop(
                "j", 2, param("N") - 1,
                assign(R[j, i], call("resid", V[j, i], U[j, i], F[j, i])),
            ),
        )
    )
    # copy back: U = V
    b.add(
        loop(
            "i", 2, param("N") - 1,
            loop("j", 2, param("N") - 1, assign(U[j, i], call("cp", V[j, i]))),
        )
    )
    return validate(b.build())


def main() -> None:
    program = build_jacobi()
    print("original nests:", program.loop_nest_count())

    optimized = compile_variant(program, "new")
    print("\n--- optimized source ---")
    print(to_source(optimized.program))
    print("regrouping:", optimized.regroup.describe().replace("\n", " / "))

    ref = run_program(program, {"N": 40}, steps=3)
    out = run_program(optimized.program, {"N": 40}, steps=3)
    assert all(np.array_equal(ref[k], out[k]) for k in ref)
    print("\nsemantics preserved over 3 relaxation steps  [OK]")

    machine = machine_for(MachineSpec(l2_bytes=96 * 1024))
    n = 193
    for label, variant in (("original", compile_variant(program, "noopt")),
                           ("optimized", optimized)):
        trace = trace_program(variant.program, {"N": n}, steps=2)
        stats = simulate_hierarchy(trace, variant.layout({"N": n}), machine)
        print(
            f"{label:9s}: L1 {stats.l1_misses:8,}  L2 {stats.l2_misses:7,}  "
            f"TLB {stats.tlb_misses:5,}  {stats.seconds * 1e3:7.2f} ms modeled  "
            f"({stats.data_transferred_bytes / 1e6:.1f} MB from memory)"
        )


if __name__ == "__main__":
    main()
