#!/usr/bin/env python
"""Quickstart: fuse and regroup a small program, watch the misses drop.

This walks the full public API in ~60 lines:

1. write a program in the mini-language,
2. apply the paper's global strategy (reuse-based loop fusion + data
   regrouping) with ``compile_variant``,
3. check the transformation is semantics-preserving,
4. simulate the memory hierarchy before and after.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import compile_variant
from repro.harness import machine_for
from repro.interp import run_program, trace_program
from repro.lang import parse, to_source, validate
from repro.memsim import simulate_hierarchy
from repro.programs.registry import MachineSpec

SOURCE = """
program quickstart
param N
real A[N, N], B[N, N], C[N, N]

# phase 1: smooth A using B
for i = 1, N {
  for j = 2, N { A[j, i] = f(A[j - 1, i], B[j, i]) }
}
# phase 2: boundary condition
for i = 1, N { A[1, i] = g(A[1, i]) }
# phase 3: derive C from A and B
for i = 1, N {
  for j = 1, N { C[j, i] = h(A[j, i], B[j, i]) }
}
"""

N = 257  # odd sizes avoid pathological power-of-two strides


def main() -> None:
    program = validate(parse(SOURCE))
    print("=== original program ===")
    print(to_source(program))

    variant = compile_variant(program, "new")  # fusion + regrouping
    print("=== after reuse-based fusion ===")
    print(to_source(variant.program))
    print("=== data regrouping decision ===")
    print(variant.regroup.describe(), "\n")

    # 1. the transformation must be invisible to the program's output
    ref = run_program(program, {"N": 64})
    out = run_program(variant.program, {"N": 64})
    assert all(np.array_equal(ref[k], out[k]) for k in ref)
    print("semantics check: outputs identical before/after  [OK]\n")

    # 2. measure the memory behaviour on a scaled Origin2000-like machine
    machine = machine_for(MachineSpec(l2_bytes=96 * 1024))
    for label, prog_variant in (("original", compile_variant(program, "noopt")),
                                ("optimized", variant)):
        trace = trace_program(prog_variant.program, {"N": N})
        stats = simulate_hierarchy(trace, prog_variant.layout({"N": N}), machine)
        print(
            f"{label:9s}: {stats.accesses:9,} accesses | "
            f"L1 {stats.l1_misses:8,} | L2 {stats.l2_misses:7,} | "
            f"TLB {stats.tlb_misses:6,} | {stats.seconds * 1e3:6.2f} ms modeled"
        )


if __name__ == "__main__":
    main()
