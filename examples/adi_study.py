#!/usr/bin/env python
"""ADI walkthrough: the paper's kernel study end to end.

Reproduces, for the ADI kernel:

* the reuse-distance histograms of Fig. 3 (program order vs reuse-driven
  execution, two input sizes);
* the Fig. 10 bars (original / +fusion / +fusion+regrouping);
* the transformed source code itself — this is a source-to-source system.

Run:  python examples/adi_study.py
"""

from repro.core import compile_variant
from repro.harness import (
    NORMALIZED_HEADERS,
    RunRequest,
    format_table,
    normalized_rows,
    run,
)
from repro.interp import trace_program
from repro.lang import to_source, validate
from repro.locality import ReuseHistogram, reuse_distances
from repro.programs import APPLICATIONS
from repro.reusedriven import reuse_driven_order


def reuse_distance_study() -> None:
    program = validate(APPLICATIONS["adi"].build())
    for n in (50, 100):
        print(f"\n--- ADI {n}x{n} (paper Fig. 3 sizes) ---")
        trace = trace_program(program, {"N": n}, with_instr=True)
        po = ReuseHistogram.from_distances(reuse_distances(trace.global_keys()))
        rd = reuse_driven_order(trace)
        rdh = ReuseHistogram.from_distances(
            reuse_distances(rd.trace.global_keys())
        )
        print(po.format_ascii(width=40, label="[program order]"))
        print(rdh.format_ascii(width=40, label="[reuse-driven execution]"))


def transformation_study() -> None:
    program = validate(APPLICATIONS["adi"].build())
    fused = compile_variant(program, "new")
    print("\n--- transformed ADI (fusion + regrouping) ---")
    print(to_source(fused.program))
    print("regrouping:", fused.regroup.describe().replace("\n", " / "))

    print("\n--- Fig. 10 bars for ADI (scaled machine) ---")
    results = run(RunRequest(program="adi", levels=("noopt", "fusion", "new"))).results
    print(format_table(NORMALIZED_HEADERS, normalized_rows(results)))
    print("paper: L1 -39%, L2 -44%, TLB -56%, speedup 2.33x")


if __name__ == "__main__":
    reuse_distance_study()
    transformation_study()
