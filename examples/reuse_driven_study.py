#!/usr/bin/env python
"""The §2.2 limit study on Sweep3D: how much can *any* reordering help?

Builds the multi-angle wavefront kernel, replays its dynamic dependence
graph with the Fig. 2 reuse-driven algorithm, and compares reuse-distance
histograms — the machine-level upper bound that motivates source-level
fusion.

Run:  python examples/reuse_driven_study.py
"""

from repro.interp import trace_program
from repro.lang import validate
from repro.locality import ReuseHistogram, reuse_distances
from repro.programs import sweep3d
from repro.reusedriven import build_dataflow, reuse_driven_order


def main() -> None:
    program = validate(sweep3d.build())
    print(program)
    trace = trace_program(program, {"N": 40}, with_instr=True)
    info = build_dataflow(trace)
    print(
        f"{info.num_instructions:,} dynamic instructions, "
        f"dataflow depth {int(info.level.max())} "
        f"(ideal machine: {info.num_instructions / (int(info.level.max()) + 1):.0f}x parallel)"
    )

    result = reuse_driven_order(trace, info)
    print(f"{result.forced:,} instructions pulled forward by ForceExecute\n")

    before = ReuseHistogram.from_distances(reuse_distances(trace.global_keys()))
    after = ReuseHistogram.from_distances(
        reuse_distances(result.trace.global_keys())
    )
    print(before.format_ascii(width=44, label="[program order: angle-major sweeps]"))
    print()
    print(after.format_ascii(width=44, label="[reuse-driven execution]"))
    threshold = 40 * 40
    print(
        f"\nreuses with distance >= mesh size ({threshold}): "
        f"{before.count_ge(threshold):,} -> {after.count_ge(threshold):,} "
        f"({(after.count_ge(threshold) / max(before.count_ge(threshold), 1) - 1):+.0%})"
    )
    print("paper (full Sweep3D): -67% evadable reuses")


if __name__ == "__main__":
    main()
