#!/usr/bin/env python
"""Figure 7, exactly: multi-level data regrouping on the paper's example.

``A`` and ``B`` are used together in the first inner loop, ``C`` alone in
the second; all three share the outer loop.  The algorithm interleaves A
and B at the element level and groups the rows of all three — producing
the paper's layout ``A[j,i] -> D[1,j,1,i]``, ``B[j,i] -> D[2,j,1,i]``,
``C[j,i] -> D[j,2,i]``.

Run:  python examples/regrouping_fig7.py
"""

from repro.core.regroup import emit_source, regroup_plan
from repro.lang import parse, to_source, validate

SOURCE = """
program fig7
param N
real A[N, N], B[N, N], C[N, N]
for i = 1, N {
  for j = 1, N { A[j, i] = g(A[j, i], B[j, i]) }
  for j = 1, N { C[j, i] = t(C[j, i]) }
}
"""


def main() -> None:
    program = validate(parse(SOURCE))
    plan = regroup_plan(program)
    print("grouping tree:")
    print(plan.describe())

    n = 4
    layout = plan.materialize({"N": n})
    layout.check_bijective()
    print(f"\nconcrete placements at N={n} (element offsets & strides):")
    for name in ("A", "B", "C"):
        p = layout.placements[name]
        print(f"  {name}[j,i] -> offset {p.offset}, strides {p.strides}")

    print("\naddress map of the first merged row block (i = 1):")
    cells = {}
    for name in ("A", "B", "C"):
        p = layout.placements[name]
        for j in range(1, n + 1):
            cells[p.offset + (j - 1) * p.strides[0]] = f"{name}[{j},1]"
    row = [cells[a] for a in sorted(cells)]
    print("  " + " ".join(row))
    print("\npaper: A -> D[1,j,1,i], B -> D[2,j,1,i], C -> D[j,2,i]")

    # source-level emission: the nested Fig. 7 tree is exactly the
    # non-uniform case Fortran cannot express (the paper's point); a
    # uniform group emits directly as a merged array
    src = emit_source(plan)
    if src.unexpressible:
        print(
            "\nsource emission: group"
            f" {src.unexpressible[0]} needs non-uniform dimensions —"
            " applied by the layout engine instead (paper §3.1)"
        )


if __name__ == "__main__":
    main()
